#include "workload/kernels.hpp"

#include "common/prng.hpp"
#include "isa/assembler.hpp"

namespace audo::workload {
namespace {

constexpr u32 kMain = 0x8000'1000;
constexpr u32 kFlashConst = 0x8004'0000;
constexpr u32 kFlashConstUncached = 0xA004'0000;
constexpr u32 kDspr = 0xC000'0000;
constexpr u32 kLmu = 0x9000'0000;

std::string li(const char* reg, u32 value) {
  if (value <= 0x7FFF) {
    return std::string("    movd  ") + reg + ", " + std::to_string(value) + "\n";
  }
  std::string out = std::string("    movh  ") + reg + ", " +
                    std::to_string(value >> 16) + "\n";
  if ((value & 0xFFFF) != 0) {
    out += std::string("    ori   ") + reg + ", " + reg + ", " +
           std::to_string(value & 0xFFFF) + "\n";
  }
  return out;
}

/// Emit `count` .word values from a deterministic generator.
std::string words(u64 seed, u32 count, u32 mask = 0xFFFF) {
  Prng prng(seed);
  std::string out;
  std::string line;
  for (u32 i = 0; i < count; ++i) {
    const u32 v = static_cast<u32>(prng.next_u64()) & mask;
    if (line.empty()) {
      line = "    .word " + std::to_string(v);
    } else {
      line += ", " + std::to_string(v);
    }
    if ((i + 1) % 8 == 0 || i + 1 == count) {
      out += line + "\n";
      line.clear();
    }
  }
  return out;
}

/// LCG fill of a DSPR buffer: buf[0..count-1] = (lcg >> 16) & 0x7FFF.
/// Uses d8/d9 for the constants, d0 for state, a2/a3 as pointer/counter.
std::string lcg_fill(const std::string& buf, u32 count, u32 seed) {
  std::string s;
  s += li("d0", seed);
  s += li("d8", 1664525);
  s += li("d9", 1013904223);
  s += li("d1", count);
  s += "    mov.ad a3, d1\n";
  s += "    lea   a2, [a15+lo(" + buf + ")]\n";
  s += "_fill_" + buf + ":\n";
  s += "    mul   d0, d0, d8\n";
  s += "    add   d0, d0, d9\n";
  s += "    shri  d1, d0, 16\n";
  s += li("d2", 0x7FFF);
  s += "    and   d1, d1, d2\n";
  s += "    st.w  d1, [a2+0]\n";
  s += "    lea   a2, [a2+4]\n";
  s += "    loop  a3, _fill_" + buf + "\n";
  return s;
}

std::string header() {
  std::string s;
  s += "    .text " + std::to_string(kMain) + "\n";
  s += "main:\n";
  s += "    movha a15, 0xC000\n";
  return s;
}

std::string footer() {
  return "    st.w  d5, [a15+lo(result)]\n    halt\n";
}

}  // namespace

Result<isa::Program> build_fir(u32 taps, u32 samples) {
  std::string s = header();
  s += lcg_fill("xbuf", samples + taps, 7);
  s += li("d5", 0);
  s += li("d0", samples);
  s += "    mov.ad a4, d0\n";
  s += "    lea   a2, [a15+lo(xbuf)]\n";
  s += "_outer:\n";
  s += "    movd  d1, 0\n";
  s += "    movh  d2, hi(coeffs)\n";
  s += "    ori   d2, d2, lo(coeffs)\n";
  s += "    mov.ad a5, d2\n";
  s += li("d2", taps);
  s += "    mov.ad a6, d2\n";
  s += "    mov.a a7, a2\n";
  s += "_inner:\n";
  s += "    ld.w  d3, [a7+0]\n";
  s += "    ld.w  d4, [a5+0]\n";
  s += "    mac   d1, d3, d4\n";
  s += "    lea   a7, [a7+4]\n";
  s += "    lea   a5, [a5+4]\n";
  s += "    loop  a6, _inner\n";
  s += "    xor   d5, d5, d1\n";
  s += "    lea   a2, [a2+4]\n";
  s += "    loop  a4, _outer\n";
  s += footer();
  s += "    .data " + std::to_string(kDspr) + "\n";
  s += "result:\n    .word 0\n";
  s += "xbuf:\n    .space " + std::to_string(4 * (samples + taps)) + "\n";
  s += "    .data " + std::to_string(kFlashConst) + "\n";
  s += "coeffs:\n" + words(11, taps, 0xFF);
  return isa::assemble(s);
}

Result<isa::Program> build_checksum(u32 words_n, bool uncached) {
  const u32 base = uncached ? kFlashConstUncached : kFlashConst;
  std::string s = header();
  s += li("d5", 0);
  s += li("d0", base);
  s += "    mov.ad a2, d0\n";
  s += li("d1", words_n);
  s += "    mov.ad a3, d1\n";
  s += "_cksum_loop:\n";
  s += "    ld.w  d2, [a2+0]\n";
  s += "    xor   d5, d5, d2\n";
  s += "    shli  d3, d5, 1\n";
  s += "    shri  d4, d5, 31\n";
  s += "    or    d5, d3, d4\n";
  s += "    lea   a2, [a2+4]\n";
  s += "    loop  a3, _cksum_loop\n";
  s += footer();
  s += "    .data " + std::to_string(kDspr) + "\n";
  s += "result:\n    .word 0\n";
  s += "    .data " + std::to_string(kFlashConst) + "\n";
  s += "block:\n" + words(23, words_n);
  return isa::assemble(s);
}

Result<isa::Program> build_matmul(u32 dim) {
  const u32 row_bytes = dim * 4;
  std::string s = header();
  s += lcg_fill("mat_a", dim * dim, 3);
  s += lcg_fill("mat_b", dim * dim, 5);
  s += li("d5", 0);
  // i loop
  s += "    lea   a2, [a15+lo(mat_a)]\n";  // a_row
  s += "    lea   a4, [a15+lo(mat_c)]\n";  // c_ptr
  s += li("d0", dim);
  s += "    mov.ad a8, d0\n";
  s += "_i_loop:\n";
  s += "    lea   a3, [a15+lo(mat_b)]\n";  // b column base
  s += li("d0", dim);
  s += "    mov.ad a9, d0\n";
  s += "_j_loop:\n";
  s += "    movd  d1, 0\n";
  s += "    mov.a a5, a2\n";   // a_ptr
  s += "    mov.a a6, a3\n";   // b_ptr
  s += li("d0", dim);
  s += "    mov.ad a10, d0\n";
  s += "_k_loop:\n";
  s += "    ld.w  d2, [a5+0]\n";
  s += "    ld.w  d3, [a6+0]\n";
  s += "    mac   d1, d2, d3\n";
  s += "    lea   a5, [a5+4]\n";
  s += "    lea   a6, [a6+" + std::to_string(row_bytes) + "]\n";
  s += "    loop  a10, _k_loop\n";
  s += "    st.w  d1, [a4+0]\n";
  s += "    xor   d5, d5, d1\n";
  s += "    lea   a4, [a4+4]\n";
  s += "    lea   a3, [a3+4]\n";  // next column
  s += "    loop  a9, _j_loop\n";
  s += "    lea   a2, [a2+" + std::to_string(row_bytes) + "]\n";
  s += "    loop  a8, _i_loop\n";
  s += footer();
  s += "    .data " + std::to_string(kDspr) + "\n";
  s += "result:\n    .word 0\n";
  s += "mat_a:\n    .space " + std::to_string(dim * dim * 4) + "\n";
  s += "mat_b:\n    .space " + std::to_string(dim * dim * 4) + "\n";
  s += "mat_c:\n    .space " + std::to_string(dim * dim * 4) + "\n";
  return isa::assemble(s);
}

Result<isa::Program> build_sort(u32 n) {
  std::string s = header();
  s += lcg_fill("arr", n, 13);
  s += li("d0", n - 1);
  s += "    mov.ad a8, d0\n";
  s += "_pass_loop:\n";
  s += li("d0", n - 1);
  s += "    mov.ad a9, d0\n";
  s += "    lea   a2, [a15+lo(arr)]\n";
  s += "_cmp_loop:\n";
  s += "    ld.w  d1, [a2+0]\n";
  s += "    ld.w  d2, [a2+4]\n";
  s += "    jge   d2, d1, _no_swap\n";
  s += "    st.w  d2, [a2+0]\n";
  s += "    st.w  d1, [a2+4]\n";
  s += "_no_swap:\n";
  s += "    lea   a2, [a2+4]\n";
  s += "    loop  a9, _cmp_loop\n";
  s += "    loop  a8, _pass_loop\n";
  // weighted sum over the sorted array as the result signature
  s += li("d5", 0);
  s += li("d6", 1);
  s += li("d0", n);
  s += "    mov.ad a3, d0\n";
  s += "    lea   a2, [a15+lo(arr)]\n";
  s += "_sum_loop:\n";
  s += "    ld.w  d1, [a2+0]\n";
  s += "    mac   d5, d1, d6\n";
  s += "    addi  d6, d6, 1\n";
  s += "    lea   a2, [a2+4]\n";
  s += "    loop  a3, _sum_loop\n";
  s += footer();
  s += "    .data " + std::to_string(kDspr) + "\n";
  s += "result:\n    .word 0\n";
  s += "arr:\n    .space " + std::to_string(n * 4) + "\n";
  return isa::assemble(s);
}

Result<isa::Program> build_lookup_stress(u32 words_n, u32 iterations,
                                         bool uncached) {
  std::string s = header();
  s += li("d5", 0);
  s += li("d0", 0x1234);   // LCG state
  s += li("d8", 1664525);
  s += li("d9", 1013904223);
  s += li("d6", uncached ? kFlashConstUncached : kFlashConst);
  s += li("d7", (words_n - 1) * 4);  // byte-index mask (word aligned)
  s += li("d1", iterations);
  s += "    mov.ad a3, d1\n";
  s += "_lk_loop:\n";
  s += "    mul   d0, d0, d8\n";
  s += "    add   d0, d0, d9\n";
  s += "    shri  d1, d0, 8\n";
  s += "    and   d1, d1, d7\n";  // mask keeps word alignment
  s += "    add   d2, d6, d1\n";
  s += "    mov.ad a2, d2\n";
  s += "    ld.w  d3, [a2+0]\n";
  s += "    xor   d5, d5, d3\n";
  s += "    loop  a3, _lk_loop\n";
  s += footer();
  s += "    .data " + std::to_string(kDspr) + "\n";
  s += "result:\n    .word 0\n";
  s += "    .data " + std::to_string(kFlashConst) + "\n";
  s += "table:\n" + words(31, words_n);
  return isa::assemble(s);
}

Result<isa::Program> build_memcpy(u32 words_n, u32 passes) {
  std::string s = header();
  s += li("d5", 0);
  s += li("d0", passes);
  s += "    mov.ad a8, d0\n";
  s += "_pass:\n";
  s += li("d0", kLmu);
  s += "    mov.ad a2, d0\n";
  s += "    lea   a4, [a15+lo(buf)]\n";
  s += li("d1", words_n);
  s += "    mov.ad a3, d1\n";
  s += "_cpy_loop:\n";
  s += "    ld.w  d2, [a2+0]\n";
  s += "    st.w  d2, [a4+0]\n";
  s += "    add   d5, d5, d2\n";
  s += "    lea   a2, [a2+4]\n";
  s += "    lea   a4, [a4+4]\n";
  s += "    loop  a3, _cpy_loop\n";
  s += "    loop  a8, _pass\n";
  s += footer();
  s += "    .data " + std::to_string(kDspr) + "\n";
  s += "result:\n    .word 0\n";
  s += "buf:\n    .space " + std::to_string(words_n * 4) + "\n";
  return isa::assemble(s);
}

const std::vector<KernelSpec>& standard_suite() {
  static const std::vector<KernelSpec> kSuite = {
      {"fir", [] { return build_fir(); }},
      {"checksum", [] { return build_checksum(); }},
      {"checksum_uncached", [] { return build_checksum(2048, true); }},
      {"matmul", [] { return build_matmul(); }},
      {"sort", [] { return build_sort(); }},
      {"lookup", [] { return build_lookup_stress(); }},
      {"memcpy", [] { return build_memcpy(); }},
  };
  return kSuite;
}

}  // namespace audo::workload
