// Synthetic transmission-control (TCU) application — a second "customer"
// with the same silicon but a very different software structure (§1/§4:
// "from a microcontroller manufacturer perspective there are many
// customers and many applications").
//
// Where the engine application is dominated by the per-tooth ignition
// ISR, the TCU's hot spot is its periodic task:
//  * turbine-speed pulse ISR (crank wheel reused as the turbine sensor):
//    ultra-light pulse counter;
//  * CAN RX ISR: wheel-speed frames into a moving-average window;
//  * 10 ms STM task (the heavy one): gear decision from a shift map
//    (flash lookup with hysteresis), slip computation with divisions,
//    line-pressure PI control, solenoid output;
//  * background: adaptation-value journalling to the data flash,
//    shift-map CRC, watchdog service.
#pragma once

#include <string>

#include "common/status.hpp"
#include "isa/program.hpp"
#include "soc/soc.hpp"

namespace audo::workload {

struct TransmissionOptions {
  u32 map_dim = 16;           // shift/pressure maps are dim x dim words
  u32 rpm = 2500;             // engine/turbine speed
  u32 time_scale = 80;
  u32 stm_period = 15'000;    // the periodic control task
  u32 can_rx_period = 7'001;  // wheel-speed frames (co-prime period)
  u32 adc_period = 3'001;     // line-pressure sensor
  u32 wdt_period = 0;
  u32 halt_after_tasks = 0;   // halt after N periodic tasks (0 = run on)

  u8 prio_stm = 25;
  u8 prio_can_rx = 15;
  u8 prio_adc = 18;
  u8 prio_pulse = 35;  // turbine pulse
  u8 prio_sync = 38;
};

struct TransmissionWorkload {
  isa::Program program;
  Addr tc_entry = 0;
  TransmissionOptions options;
  std::string source;
};

Result<TransmissionWorkload> build_transmission_workload(
    const TransmissionOptions& options);

void configure_transmission(soc::Soc& soc, const TransmissionOptions& options);

Status install_transmission(soc::Soc& soc, const TransmissionWorkload& workload);

}  // namespace audo::workload
