#include "workload/transmission.hpp"

#include <cassert>

#include "common/bits.hpp"
#include "isa/assembler.hpp"
#include "periph/sfr_bridge.hpp"
#include "workload/asm_builder.hpp"

namespace audo::workload {
namespace {

constexpr Addr kBiv = 0x8000'0000;
constexpr Addr kMainBase = 0x8000'1000;
constexpr Addr kFlashMaps = 0x8005'0000;
constexpr Addr kDsprData = 0xC000'0000;

constexpr u32 kStmCmp0 = periph::sfr::kStm + 0x08;
constexpr u32 kStmCtrl = periph::sfr::kStm + 0x10;
constexpr u32 kWdtService = periph::sfr::kWatchdog + 0x00;
constexpr u32 kWdtPeriod = periph::sfr::kWatchdog + 0x04;
constexpr u32 kCrankRpm = periph::sfr::kCrank + 0x00;
constexpr u32 kAdcResult = periph::sfr::kAdc + 0x04;
constexpr u32 kAdcPeriod = periph::sfr::kAdc + 0x08;
constexpr u32 kCanRxData = periph::sfr::kCan + 0x08;
constexpr u32 kCanRxPeriod = periph::sfr::kCan + 0x10;

void emit_map(Asm& a, const char* name, u32 dim, unsigned mul_r,
              unsigned mul_c, unsigned bias) {
  a.label(name);
  std::string line;
  for (u32 r = 0; r < dim; ++r) {
    for (u32 c = 0; c < dim; ++c) {
      const u32 v = (bias + r * mul_r + c * mul_c) & 0xFF;
      if (line.empty()) {
        line = "    .word " + std::to_string(v);
      } else {
        line += ", " + std::to_string(v);
      }
      if ((c + 1) % 8 == 0 || c + 1 == dim) {
        a.raw(line);
        line.clear();
      }
    }
  }
}

}  // namespace

Result<TransmissionWorkload> build_transmission_workload(
    const TransmissionOptions& opt) {
  assert(is_pow2(opt.map_dim) && opt.map_dim >= 4 && opt.map_dim <= 64);
  const u32 dim = opt.map_dim;
  const u32 log2_dim = log2_exact(dim);
  const u32 dim_mask = dim - 1;
  const u32 map_bytes = dim * dim * 4;

  Asm a;
  a.comment("Generated transmission-control workload (workload/transmission.cpp)");

  auto vector = [&](u8 prio, const std::string& target) {
    a.section(".text", kBiv + prio * 32u);
    a.op("j " + target);
  };
  vector(opt.prio_can_rx, "isr_can");
  vector(opt.prio_adc, "isr_adc");
  vector(opt.prio_stm, "isr_task");
  vector(opt.prio_pulse, "isr_pulse");

  // ---- main / init ----
  a.section(".text", kMainBase);
  a.label("main");
  a.op("di");
  a.op("movha a15, 0xC000");
  a.op("movha a14, 0xF000");
  a.li("d0", kBiv);
  a.op("mtcr  biv, d0");
  a.li("d0", opt.stm_period);
  a.op("st.w  d0, [a14+" + std::to_string(kStmCmp0) + "]");
  a.li("d0", 1);
  a.op("st.w  d0, [a14+" + std::to_string(kStmCtrl) + "]");
  a.li("d0", opt.adc_period);
  a.op("st.w  d0, [a14+" + std::to_string(kAdcPeriod) + "]");
  a.li("d0", opt.can_rx_period);
  a.op("st.w  d0, [a14+" + std::to_string(kCanRxPeriod) + "]");
  if (opt.wdt_period != 0) {
    a.li("d0", opt.wdt_period);
    a.op("st.w  d0, [a14+" + std::to_string(kWdtPeriod) + "]");
  }
  a.op("ei");

  a.label("_bg");
  a.op("call  map_crc");
  a.li("d0", periph::Watchdog::kServiceKey);
  a.op("st.w  d0, [a14+" + std::to_string(kWdtService) + "]");
  // Adaptation journalling every 32 periodic tasks.
  a.op("ld.w  d0, [a15+" + off("task_count") + "]");
  a.op("andi  d1, d0, 31");
  a.op("jnz   d1, _bg_no_adapt");
  a.op("ld.w  d1, [a15+" + off("adapt_done") + "]");
  a.op("jeq   d1, d0, _bg_no_adapt");
  a.op("st.w  d0, [a15+" + off("adapt_done") + "]");
  a.op("call  adapt_write");
  a.label("_bg_no_adapt");
  if (opt.halt_after_tasks != 0) {
    a.op("ld.w  d0, [a15+" + off("task_count") + "]");
    a.li("d1", opt.halt_after_tasks);
    a.op("jlt   d0, d1, _bg");
    a.op("halt");
  } else {
    a.op("j     _bg");
  }

  // ---- background subroutines ----
  a.label("map_crc");
  a.li("d0", 0);
  a.op("movh  d2, hi(shift_map)");
  a.op("ori   d2, d2, lo(shift_map)");
  a.op("mov.ad a2, d2");
  a.li("d1", 64);
  a.op("mov.ad a3, d1");
  a.label("_crc_loop");
  a.op("ld.w  d2, [a2+0]");
  a.op("xor   d0, d0, d2");
  a.op("shli  d3, d0, 3");
  a.op("shri  d4, d0, 29");
  a.op("or    d0, d3, d4");
  a.op("lea   a2, [a2+4]");
  a.op("loop  a3, _crc_loop");
  a.op("st.w  d0, [a15+" + off("crc_sum") + "]");
  a.op("ret");

  a.label("adapt_write");
  a.op("ld.w  d0, [a15+" + off("adapt_idx") + "]");
  a.op("andi  d1, d0, 127");
  a.op("shli  d1, d1, 2");
  a.op("movh  d2, 0xAF00");
  a.op("ori   d2, d2, 0x1000");  // second journal region in DFlash
  a.op("add   d2, d2, d1");
  a.op("mov.ad a2, d2");
  a.op("ld.w  d3, [a15+" + off("sol_out") + "]");
  a.op("st.w  d3, [a2+0]");
  a.op("addi  d0, d0, 1");
  a.op("st.w  d0, [a15+" + off("adapt_idx") + "]");
  a.op("ret");

  // ---- ISRs ----
  // Turbine pulse: ultra-light counter (the crank wheel is the sensor).
  a.label("isr_pulse");
  a.op("st.w  d8, [a15+" + off("sv_p_d8") + "]");
  a.op("ld.w  d8, [a15+" + off("pulse_count") + "]");
  a.op("addi  d8, d8, 1");
  a.op("st.w  d8, [a15+" + off("pulse_count") + "]");
  a.op("ld.w  d8, [a15+" + off("sv_p_d8") + "]");
  a.op("rfe");

  // Wheel-speed frame into a 16-entry ring.
  a.label("isr_can");
  a.op("st.w  d8, [a15+" + off("sv_c_d8") + "]");
  a.op("st.w  d9, [a15+" + off("sv_c_d9") + "]");
  a.op("st.w  d10, [a15+" + off("sv_c_d10") + "]");
  a.op("st.a  a8, [a15+" + off("sv_c_a8") + "]");
  a.op("ld.w  d8, [a14+" + std::to_string(kCanRxData) + "]");
  a.op("andi  d8, d8, 0x3FF");  // plausibility-limit the wheel speed
  a.op("ld.w  d9, [a15+" + off("wheel_head") + "]");
  a.op("andi  d10, d9, 15");
  a.op("shli  d10, d10, 2");
  a.op("movh  d9, hi(wheel_ring)");
  a.op("ori   d9, d9, lo(wheel_ring)");
  a.op("add   d9, d9, d10");
  a.op("mov.ad a8, d9");
  a.op("st.w  d8, [a8+0]");
  a.op("ld.w  d9, [a15+" + off("wheel_head") + "]");
  a.op("addi  d9, d9, 1");
  a.op("st.w  d9, [a15+" + off("wheel_head") + "]");
  a.op("ld.w  d8, [a15+" + off("sv_c_d8") + "]");
  a.op("ld.w  d9, [a15+" + off("sv_c_d9") + "]");
  a.op("ld.w  d10, [a15+" + off("sv_c_d10") + "]");
  a.op("ld.a  a8, [a15+" + off("sv_c_a8") + "]");
  a.op("rfe");

  // Line-pressure sensor low-pass.
  a.label("isr_adc");
  a.op("st.w  d8, [a15+" + off("sv_a_d8") + "]");
  a.op("st.w  d9, [a15+" + off("sv_a_d9") + "]");
  a.op("ld.w  d8, [a14+" + std::to_string(kAdcResult) + "]");
  a.op("ld.w  d9, [a15+" + off("press_filt") + "]");
  a.op("sub   d8, d8, d9");
  a.op("sari  d8, d8, 2");
  a.op("add   d9, d9, d8");
  a.op("st.w  d9, [a15+" + off("press_filt") + "]");
  a.op("ld.w  d8, [a15+" + off("sv_a_d8") + "]");
  a.op("ld.w  d9, [a15+" + off("sv_a_d9") + "]");
  a.op("rfe");

  // The heavy periodic task.
  a.label("isr_task");
  for (const char* r : {"d8", "d9", "d10", "d11", "d12"}) {
    a.op(std::string("st.w  ") + r + ", [a15+" + off(std::string("sv_t_") + r) + "]");
  }
  a.op("st.a  a8, [a15+" + off("sv_t_a8") + "]");
  a.op("st.a  a9, [a15+" + off("sv_t_a9") + "]");
  // 1. turbine speed = pulses since last task (snapshot and clear).
  a.op("ld.w  d8, [a15+" + off("pulse_count") + "]");
  a.op("movd  d9, 0");
  a.op("st.w  d9, [a15+" + off("pulse_count") + "]");
  a.op("st.w  d8, [a15+" + off("turbine") + "]");
  // 2. wheel average over the 16-entry ring.
  a.op("movd  d9, 0");
  a.op("movh  d10, hi(wheel_ring)");
  a.op("ori   d10, d10, lo(wheel_ring)");
  a.op("mov.ad a8, d10");
  a.li("d10", 16);
  a.op("mov.ad a9, d10");
  a.label("_wheel_sum");
  a.op("ld.w  d10, [a8+0]");
  a.op("add   d9, d9, d10");
  a.op("lea   a8, [a8+4]");
  a.op("loop  a9, _wheel_sum");
  a.op("shri  d9, d9, 4");
  a.op("st.w  d9, [a15+" + off("wheel_avg") + "]");
  // 3. gear decision from the shift map, with hysteresis.
  a.op("shri  d10, d8, 2");  // turbine bucket
  a.op("andi  d10, d10, " + std::to_string(dim_mask));
  a.op("shri  d11, d9, 4");  // wheel bucket
  a.op("andi  d11, d11, " + std::to_string(dim_mask));
  a.op("shli  d10, d10, " + std::to_string(log2_dim));
  a.op("add   d10, d10, d11");
  a.op("shli  d10, d10, 2");
  a.op("movh  d11, hi(shift_map)");
  a.op("ori   d11, d11, lo(shift_map)");
  a.op("add   d11, d11, d10");
  a.op("mov.ad a8, d11");
  a.op("ld.w  d11, [a8+0]");            // target gear
  a.op("ld.w  d12, [a8+" + std::to_string(map_bytes) + "]");  // pressure map
  a.op("andi  d11, d11, 7");
  a.op("jnz   d11, _gear_valid");
  a.op("movd  d11, 1");  // the map never commands neutral
  a.label("_gear_valid");
  a.op("ld.w  d10, [a15+" + off("gear") + "]");
  a.op("jeq   d10, d11, _no_shift");
  a.op("ld.w  d10, [a15+" + off("shift_state") + "]");
  a.op("addi  d10, d10, 1");
  a.op("st.w  d10, [a15+" + off("shift_state") + "]");
  a.op("movd  d9, 3");
  a.op("jlt   d10, d9, _shift_done");
  a.op("st.w  d11, [a15+" + off("gear") + "]");
  a.op("movd  d10, 0");
  a.op("st.w  d10, [a15+" + off("shift_state") + "]");
  a.op("ld.w  d10, [a15+" + off("shift_count") + "]");
  a.op("addi  d10, d10, 1");
  a.op("st.w  d10, [a15+" + off("shift_count") + "]");
  a.op("j     _shift_done");
  a.label("_no_shift");
  a.op("movd  d10, 0");
  a.op("st.w  d10, [a15+" + off("shift_state") + "]");
  a.label("_shift_done");
  // 4. slip = engine_rpm * 100 / (turbine + 1): division-heavy.
  a.op("ld.w  d9, [a14+" + std::to_string(kCrankRpm) + "]");
  a.li("d10", 100);
  a.op("mul   d9, d9, d10");
  a.op("ld.w  d10, [a15+" + off("turbine") + "]");
  a.op("addi  d10, d10, 1");
  a.op("div   d9, d9, d10");
  a.op("st.w  d9, [a15+" + off("slip") + "]");
  // 5. line-pressure PI: target from the pressure map cell (d12).
  a.op("ld.w  d9, [a15+" + off("press_filt") + "]");
  a.op("shli  d12, d12, 3");
  a.op("sub   d9, d12, d9");  // error
  a.op("ld.w  d10, [a15+" + off("pi_integ") + "]");
  a.op("add   d10, d10, d9");
  a.op("st.w  d10, [a15+" + off("pi_integ") + "]");
  a.op("shli  d9, d9, 2");
  a.op("add   d9, d9, d10");
  a.op("st.w  d9, [a15+" + off("sol_out") + "]");
  // 6. bookkeeping.
  a.op("ld.w  d9, [a15+" + off("task_count") + "]");
  a.op("addi  d9, d9, 1");
  a.op("st.w  d9, [a15+" + off("task_count") + "]");
  for (const char* r : {"d8", "d9", "d10", "d11", "d12"}) {
    a.op(std::string("ld.w  ") + r + ", [a15+" + off(std::string("sv_t_") + r) + "]");
  }
  a.op("ld.a  a8, [a15+" + off("sv_t_a8") + "]");
  a.op("ld.a  a9, [a15+" + off("sv_t_a9") + "]");
  a.op("rfe");

  // ---- data: DSPR ----
  a.section(".data", kDsprData);
  for (const char* v :
       {"gear", "shift_state", "shift_count", "pulse_count", "turbine",
        "wheel_head", "wheel_avg", "press_filt", "pi_integ", "sol_out",
        "slip", "task_count", "adapt_idx", "adapt_done", "crc_sum",
        "sv_p_d8", "sv_c_d8", "sv_c_d9", "sv_c_d10", "sv_c_a8", "sv_a_d8",
        "sv_a_d9", "sv_t_d8", "sv_t_d9", "sv_t_d10", "sv_t_d11", "sv_t_d12",
        "sv_t_a8", "sv_t_a9"}) {
    a.label(v);
    const bool is_gear = std::string(v) == "gear";
    const bool is_adapt_done = std::string(v) == "adapt_done";
    a.op(std::string(".word ") + (is_gear ? "1" : is_adapt_done ? "99" : "0"));
  }
  a.label("wheel_ring");
  a.op(".space 64");

  // ---- data: flash maps ----
  a.section(".data", kFlashMaps);
  emit_map(a, "shift_map", dim, 3, 5, 1);
  emit_map(a, "pressure_map", dim, 11, 7, 40);

  auto program = isa::assemble(a.text());
  if (!program.is_ok()) return program.status();

  TransmissionWorkload workload;
  workload.program = std::move(program).value();
  workload.options = opt;
  workload.source = a.text();
  workload.tc_entry = workload.program.symbol_addr("main").value();
  return workload;
}

void configure_transmission(soc::Soc& soc, const TransmissionOptions& opt) {
  soc.crank().set_rpm(opt.rpm);
  soc.crank().set_time_scale(opt.time_scale);

  periph::IrqRouter& router = soc.irq_router();
  const soc::SrcIds& srcs = soc.srcs();
  using periph::IrqTarget;
  router.configure(srcs.stm0, opt.prio_stm, IrqTarget::kTc);
  router.configure(srcs.crank_tooth, opt.prio_pulse, IrqTarget::kTc);
  router.configure(srcs.crank_sync, 0, IrqTarget::kTc, /*enabled=*/false);
  router.configure(srcs.adc_done, opt.prio_adc, IrqTarget::kTc);
  router.configure(srcs.can_rx, opt.prio_can_rx, IrqTarget::kTc);
  router.configure(srcs.can_tx, 0, IrqTarget::kTc, /*enabled=*/false);
  router.configure(srcs.wdt_timeout, 0, IrqTarget::kTc, /*enabled=*/false);
}

Status install_transmission(soc::Soc& soc,
                            const TransmissionWorkload& workload) {
  if (Status s = soc.load(workload.program); !s.is_ok()) return s;
  configure_transmission(soc, workload.options);
  soc.reset(workload.tc_entry);
  return Status::ok();
}

}  // namespace audo::workload
