// Synthetic engine-control application — the stand-in for the customer
// software the paper profiles (see DESIGN.md, substitutions table).
//
// Structure (all of it real TRC code running on the simulated SoC):
//  * crank-tooth ISR (highest rate): reads crank/ADC state, interpolates
//    ignition & fuel from 2-D lookup tables (flash const data — or DSPR
//    when the §5 scratchpad optimization is applied);
//  * crank-sync ISR: revolution counter;
//  * ADC ISR: IIR low-pass of the sampled sensor (optionally offloaded
//    to the PCP, or replaced by a DMA channel — the HW/SW split options
//    §1/§4 describe);
//  * CAN RX ISR: message ring buffer (optionally on the PCP);
//  * 10ms STM task: PI controller + CAN TX;
//  * background: flash diagnostics checksum, watchdog service, EEPROM-
//    emulation journal writes to the data flash.
#pragma once

#include <string>

#include "common/status.hpp"
#include "isa/program.hpp"
#include "soc/soc.hpp"

namespace audo::workload {

struct EngineOptions {
  // ---- HW/SW partitioning ----
  bool pcp_offload = false;     // ADC + CAN RX serviced by the PCP
  bool use_dma_for_adc = false; // DMA channel copies ADC results (no ISR)

  // ---- software structure ----
  u32 table_dim = 32;            // ignition/fuel maps are dim x dim words
  bool tables_in_dspr = false;   // §5 scratchpad-mapping optimization
  /// 2x2 neighbourhood interpolation in the tooth ISR (8 map reads per
  /// tooth, as real ignition-map lookups do) instead of 2 point reads.
  bool interpolate = true;
  /// The tooth ISR measures its own entry latency (cycles from the tooth
  /// edge to the first ISR instruction, via the crank TOOTH_TIME SFR and
  /// CCNT) into the DSPR variables lat_max / lat_sum — the hard-real-time
  /// figure of merit for partitioning studies.
  bool measure_latency = true;
  u32 diag_words = 64;           // background checksum block length
  /// Diagnostics read flash through the non-cached alias (flash
  /// integrity checks must see the array, not the cache).
  bool diag_uncached = false;
  u32 diag_stride_bytes = 4;     // >32 defeats line buffers (worst case)
  u32 journal_every = 16;        // EEPROM write every N background loops
  /// Place the CAN message ring in the LMU (bus SRAM) instead of the
  /// DSPR — gives the LMU a real role for SRAM-latency studies.
  bool can_ring_in_lmu = false;
  u32 halt_after_revs = 0;       // 0 = run until the cycle budget
  /// Halt after N background iterations — a *compute-bound* completion
  /// criterion (cycles-to-N-revolutions is crank-bound and insensitive
  /// to CPU speed; use this for architecture comparisons).
  u32 halt_after_bg = 0;
  /// Replace the background loop (diagnostics + watchdog service +
  /// journal) with a WFI park: all work happens in the ISRs and the TC
  /// idles between interrupts. This is the idle-heavy shape real
  /// event-driven ECU firmware has between crank teeth, and the shape
  /// the SoC fast-forward path (soc/soc.hpp) accelerates. Requires
  /// wdt_period == 0 (nothing services the watchdog) and ignores
  /// halt_after_bg (there are no background iterations).
  bool idle_background = false;

  // ---- environment ----
  u32 rpm = 3000;
  u32 crank_time_scale = 50;  // compress engine time into short sims
  u32 stm_period = 20'000;    // "10 ms task" in scaled cycles
  u32 adc_period = 2'500;
  u32 can_rx_period = 9'000;
  u32 wdt_period = 0;         // 0 = watchdog disabled

  // ---- interrupt priorities ----
  u8 prio_stm = 10;
  u8 prio_dma_done = 15;
  u8 prio_can_rx = 20;
  u8 prio_adc = 30;
  u8 prio_tooth = 40;
  u8 prio_sync = 45;
};

struct EngineWorkload {
  isa::Program program;
  Addr tc_entry = 0;
  Addr pcp_entry = 0;
  EngineOptions options;
  std::string source;  // the generated assembly (for docs and debugging)
};

/// Generate and assemble the application.
Result<EngineWorkload> build_engine_workload(const EngineOptions& options);

/// Configure the SoC side: crank wheel speed/time scale, interrupt
/// routing (including the PCP / DMA partitioning), DMA channel setup.
/// Call after Soc construction, before reset/run.
void configure_engine(soc::Soc& soc, const EngineOptions& options);

/// Convenience: load + configure + reset an SoC (or the SoC inside an
/// EmulationDevice — pass ed.soc()).
Status install_engine(soc::Soc& soc, const EngineWorkload& workload);

}  // namespace audo::workload
