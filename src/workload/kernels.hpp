// Self-contained halting kernels: the workload suite for architecture-
// option evaluation (E6) and for micro-validation of the core model.
//
// Each builder returns an assembled Program whose `main` runs the kernel
// and HALTs; expected results are stored at well-known DSPR symbols so
// tests can check functional correctness, not just timing.
#pragma once

#include <vector>

#include "common/status.hpp"
#include "isa/program.hpp"

namespace audo::workload {

/// FIR filter: `samples` outputs of a `taps`-tap filter. Samples live in
/// DSPR, coefficients in flash (cached region) — a typical signal chain.
/// Result checksum at DSPR symbol "result".
Result<isa::Program> build_fir(u32 taps = 16, u32 samples = 256);

/// Rotate-xor checksum over `words` words of flash via the *cached* data
/// path. Result at "result".
Result<isa::Program> build_checksum(u32 words = 2048, bool uncached = false);

/// Dense matrix multiply C = A*B of dim x dim 32-bit matrices in DSPR.
/// Result (C checksum) at "result".
Result<isa::Program> build_matmul(u32 dim = 12);

/// Bubble sort of `n` pseudo-random words in DSPR (branchy, LS-heavy).
/// Result (sorted-sum) at "result".
Result<isa::Program> build_sort(u32 n = 96);

/// Pointer-chase through a `words`-word table in flash with an LCG index
/// (cache-hostile lookup pattern — the look-up-table access profile §5
/// talks about). Result at "result". With `uncached` the table is read
/// through the non-cached alias (read buffers only).
Result<isa::Program> build_lookup_stress(u32 words = 4096, u32 iterations = 4096,
                                         bool uncached = false);

/// Block copy LMU -> DSPR, `words` words per pass, `passes` passes.
Result<isa::Program> build_memcpy(u32 words = 512, u32 passes = 8);

/// Names + builders of the standard evaluation suite.
struct KernelSpec {
  const char* name;
  Result<isa::Program> (*build)();
};
const std::vector<KernelSpec>& standard_suite();

}  // namespace audo::workload
