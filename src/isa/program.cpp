#include "isa/program.hpp"

#include <algorithm>

namespace audo::isa {
namespace {
const std::string kUnknown = "?";
}

SymbolMap::SymbolMap(const Program& program) {
  // Collect symbols per kind, then close each range at the next symbol in
  // the same section (or at section end).
  auto build = [&](bool want_text, std::vector<Range>& out) {
    for (const Symbol& sym : program.symbols()) {
      if (sym.in_text != want_text) continue;
      // Convention: underscore-prefixed labels are local (loop tops,
      // save slots) and do not open a new function/data object range.
      if (!sym.name.empty() && sym.name[0] == '_') continue;
      // Find the containing section to bound the range.
      Addr section_end = sym.addr;
      for (const Section& sec : program.sections()) {
        if (sym.addr >= sec.base && sym.addr < sec.end()) {
          section_end = sec.end();
          break;
        }
      }
      out.push_back(Range{sym.addr, section_end, sym.name});
    }
    std::sort(out.begin(), out.end(),
              [](const Range& a, const Range& b) { return a.begin < b.begin; });
    for (usize i = 0; i + 1 < out.size(); ++i) {
      out[i].end = std::min(out[i].end, out[i + 1].begin);
    }
  };
  build(true, functions_);
  build(false, data_);
}

const std::string& SymbolMap::lookup(const std::vector<Range>& ranges,
                                     Addr addr) {
  // Binary search for the last range with begin <= addr.
  auto it = std::upper_bound(
      ranges.begin(), ranges.end(), addr,
      [](Addr a, const Range& r) { return a < r.begin; });
  if (it == ranges.begin()) return kUnknown;
  --it;
  if (addr >= it->begin && addr < it->end) return it->name;
  return kUnknown;
}

const std::string& SymbolMap::function_at(Addr pc) const {
  return lookup(functions_, pc);
}

const std::string& SymbolMap::data_symbol_at(Addr addr) const {
  return lookup(data_, addr);
}

}  // namespace audo::isa
