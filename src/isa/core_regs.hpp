// Core special-function registers reachable via MFCR/MTCR.
//
// Mirrors the handful of TriCore CSFRs the methodology touches: the
// interrupt control register, the vector base, and free-running cycle /
// instruction counters (the CCNT/ICNT debug counters of TriCore 1.3).
#pragma once

#include "common/types.hpp"

namespace audo::isa {

enum class CoreReg : u16 {
  kCoreId = 0,   // read-only: 0 = TriCore-like "TC", 1 = PCP
  kIcr = 1,      // bit 0: IE (global enable); bits 8..15: CCPN
  kBiv = 2,      // interrupt vector table base address
  kCcntLo = 3,   // read-only free-running cycle counter, low 32 bits
  kCcntHi = 4,   // high 32 bits
  kIcnt = 5,     // read-only retired-instruction counter, low 32 bits
  kIrqn = 6,     // read-only: priority of the most recent accepted interrupt
  kBtv = 7,      // trap vector table base address (0 = traps halt the core)
  kScratch0 = 8, // software scratch CSFRs (monitor/RTOS use)
  kScratch1 = 9,
};

inline constexpr u32 kIcrIeBit = 1u << 0;
inline constexpr unsigned kIcrCcpnShift = 8;
inline constexpr u32 kIcrCcpnMask = 0xFFu << kIcrCcpnShift;

/// Bytes per interrupt vector table entry: priority p is dispatched to
/// BIV + p * kVectorEntryBytes (room for a jump to the handler).
inline constexpr u32 kVectorEntryBytes = 32;

}  // namespace audo::isa
