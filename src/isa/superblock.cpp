#include "isa/superblock.hpp"

#include <algorithm>
#include <cassert>

namespace audo::isa {

SuperOp predecode_word(u32 word) {
  SuperOp op;
  op.word = word;
  if (auto decoded = decode(word); decoded.is_ok()) {
    op.instr = decoded.value();
  } else {
    // Same containment as the fetch path: garbage executes as HALT.
    op.instr.opcode = Opcode::kHalt;
  }
  const OpInfo& info = op_info(op.instr.opcode);
  op.pipe = static_cast<u8>(info.pipe);
  op.latency = info.result_latency;
  if (info.is_load) op.flags |= SuperOp::kLoad;
  if (info.is_store) op.flags |= SuperOp::kStore;
  if (info.is_branch) op.flags |= SuperOp::kBranch;
  if (info.is_cond_branch) op.flags |= SuperOp::kCondBranch;
  // The fast tier executes the three ordinary pipes plus NOP; every other
  // SYS op (HALT, WFI, EI/DI, RFE, MFCR/MTCR, DEBUG) changes state the
  // window model freezes, so the cycle that issues one is replayed by the
  // accurate stepper.
  if (info.pipe == Pipe::kSys && op.instr.opcode != Opcode::kNop) {
    op.flags |= SuperOp::kBail;
  }

  // Source/destination sets: must mirror the accurate stepper's hazard
  // tables (cpu.cpp sources_of/dest_of) exactly — the fast issue loop
  // checks the same scoreboard through this precomputed form.
  const Instr& in = op.instr;
  unsigned n = 0;
  const auto add_src = [&](bool addr_file, u8 idx) {
    op.src[n++] = static_cast<u8>((addr_file ? SuperOp::kAddrFile : 0) |
                                  (idx & 0xF));
  };
  using enum Opcode;
  if (info.uses_rb) {
    const bool a = in.opcode == kAdda;
    add_src(a, in.ra);
    add_src(a, in.rb);
    if (in.opcode == kMac) add_src(false, in.rd);  // accumulator is a source
  } else if (info.is_load) {
    add_src(true, in.ra);
  } else if (info.is_store) {
    add_src(in.opcode == kStA, in.rd);  // value
    add_src(true, in.ra);               // base
  } else {
    switch (in.opcode) {
      case kAbs: case kAddi: case kAndi: case kOri: case kXori:
      case kShli: case kShri: case kSari:
        add_src(false, in.ra);
        break;
      case kMovAD: case kMtcr:
        add_src(false, in.ra);
        break;
      case kMovDA: case kMovA: case kLea: case kJi: case kCalli:
        add_src(true, in.ra);
        break;
      case kRet:
        add_src(true, 11);
        break;
      case kJeq: case kJne: case kJlt: case kJge: case kJltu: case kJgeu:
        add_src(false, in.rd);
        add_src(false, in.ra);
        break;
      case kJz: case kJnz:
        add_src(false, in.rd);
        break;
      case kLoop:
        add_src(true, in.rd);
        break;
      default:
        break;
    }
  }

  const auto set_dest = [&](bool addr_file, u8 idx) {
    op.dest = static_cast<u8>((addr_file ? SuperOp::kAddrFile : 0) |
                              (idx & 0xF));
  };
  if (info.is_store) {
    // no destination
  } else if (info.uses_rb) {
    set_dest(in.opcode == kAdda, in.rd);
  } else if (info.is_load) {
    set_dest(in.opcode == kLdA, in.rd);
  } else {
    switch (in.opcode) {
      case kAbs: case kAddi: case kAndi: case kOri: case kXori:
      case kShli: case kShri: case kSari: case kMovd: case kMovh:
      case kMovDA: case kMfcr:
        set_dest(false, in.rd);
        break;
      case kMovAD: case kMovA: case kMovha: case kLea:
        set_dest(true, in.rd);
        break;
      case kLoop:
        set_dest(true, in.rd);
        break;
      case kCall: case kCalli:
        set_dest(true, 11);
        break;
      default:
        break;
    }
  }
  return op;
}

void SuperblockCache::add_region(Addr base, u32 bytes, bool pspr,
                                 WordReader reader, const void* reader_ctx) {
  if (bytes == 0 || reader == nullptr) return;
  Region region;
  region.base = base;
  region.bytes = bytes;
  region.pspr = pspr;
  region.reader = reader;
  region.reader_ctx = reader_ctx;
  region.chunks.resize((bytes + kChunkBytes - 1) / kChunkBytes);
  regions_.push_back(std::move(region));
}

Superblock* SuperblockCache::build(Region& region, u32 chunk_index) {
  auto blk = std::make_unique<Superblock>();
  blk->base = region.base + chunk_index * kChunkBytes;
  blk->pspr = region.pspr;
  const u32 bytes =
      std::min(kChunkBytes, region.bytes - chunk_index * kChunkBytes);
  const u32 nops = bytes / kInstrBytes;
  blk->ops.reserve(nops);
  for (u32 i = 0; i < nops; ++i) {
    const u32 offset = chunk_index * kChunkBytes + i * kInstrBytes;
    blk->ops.push_back(
        predecode_word(region.reader(region.reader_ctx, offset)));
  }
  ++stats_.builds;
  region.chunks[chunk_index] = std::move(blk);
  return region.chunks[chunk_index].get();
}

const Superblock* SuperblockCache::lookup(Addr pc) {
  ++stats_.lookups;
  for (Region& region : regions_) {
    if (!region.contains(pc)) continue;
    const u32 ci = static_cast<u32>((pc - region.base) / kChunkBytes);
    Superblock* blk = region.chunks[ci].get();
    if (blk == nullptr) blk = build(region, ci);
    return blk->contains(pc) ? blk : nullptr;
  }
  return nullptr;
}

void SuperblockCache::invalidate(Addr addr, u32 bytes) {
  if (bytes == 0) return;
  for (Region& region : regions_) {
    // Clip [addr, addr+bytes) to the region, in offset space.
    if (addr + bytes <= region.base || addr >= region.base + region.bytes) {
      continue;
    }
    const Addr lo = std::max(addr, region.base) - region.base;
    const Addr hi = std::min<Addr>(addr + bytes, region.base + region.bytes) -
                    region.base;
    const u32 first = static_cast<u32>(lo / kChunkBytes);
    const u32 last = static_cast<u32>((hi - 1) / kChunkBytes);
    for (u32 ci = first; ci <= last && ci < region.chunks.size(); ++ci) {
      if (region.chunks[ci] != nullptr) {
        region.chunks[ci].reset();
        ++stats_.invalidations;
      }
    }
  }
}

void SuperblockCache::invalidate_all() {
  for (Region& region : regions_) {
    for (auto& chunk : region.chunks) {
      if (chunk != nullptr) {
        chunk.reset();
        ++stats_.invalidations;
      }
    }
  }
}

}  // namespace audo::isa
