// The TRC instruction set — a TriCore-flavoured 32-bit load/store ISA.
//
// The real TriCore 1.3.1 ISA is proprietary and far larger than the
// methodology needs. TRC keeps the properties the paper's profiling and
// optimization methodology actually observes:
//   * split data (d0..d15) / address (a0..a15) register files, which feed
//     the integer (IP) and load/store (LS) pipelines of the multi-issue
//     core — the basis of "up to 3 instructions within a clock cycle",
//   * a zero-overhead LOOP instruction (the third, loop pipeline),
//   * memory-mapped peripherals and distinct cached/non-cached flash
//     address aliases,
//   * priority-driven interrupt entry with a vector table (BIV).
//
// Encoding: fixed 32-bit words.
//   [31:24] opcode   [23:20] rd   [19:16] ra   [15:0] imm16
// Register-register ops carry rb in imm16[3:0]. Branch displacements are
// signed imm16 counted in 32-bit words relative to the *next* instruction.
#pragma once

#include <optional>
#include <string>

#include "common/status.hpp"
#include "common/types.hpp"

namespace audo::isa {

enum class Opcode : u8 {
  // System / control (issue alone, SYS pipe).
  kNop = 0,
  kHalt,   // stop the core (simulation end marker)
  kWfi,    // wait for interrupt
  kEi,     // set ICR.IE
  kDi,     // clear ICR.IE
  kRfe,    // return from exception/interrupt
  kMfcr,   // d[rd] = CR[imm16]
  kMtcr,   // CR[imm16] = d[ra]
  kDebug,  // software breakpoint / MCDS software trigger strobe

  // Integer pipeline (IP): data-register ALU.
  kAdd,   // d[rd] = d[ra] + d[rb]
  kSub,
  kAnd,
  kOr,
  kXor,
  kShl,   // d[rd] = d[ra] << (d[rb] & 31)
  kShr,   // logical
  kSar,   // arithmetic
  kMul,   // 32x32 -> low 32, 2-cycle result latency
  kMac,   // d[rd] += d[ra] * d[rb], 2-cycle result latency
  kDiv,   // signed divide, multi-cycle
  kMin,
  kMax,
  kAbs,   // d[rd] = |d[ra]|
  kAddi,  // d[rd] = d[ra] + sext(imm16)
  kAndi,  // zero-extended imm16
  kOri,
  kXori,
  kShli,  // shift by imm16[4:0]
  kShri,
  kSari,
  kMovd,  // d[rd] = sext(imm16)
  kMovh,  // d[rd] = imm16 << 16
  kMovDA, // d[rd] = a[ra]           (cross-file move, IP pipe)

  // Load/store pipeline (LS): address-register ops and memory.
  kMovAD,  // a[rd] = d[ra]
  kMovA,   // a[rd] = a[ra]
  kMovha,  // a[rd] = imm16 << 16
  kLea,    // a[rd] = a[ra] + sext(imm16)
  kAdda,   // a[rd] = a[ra] + a[rb]
  kLdW,    // d[rd] = mem32[a[ra] + sext(imm16)]
  kLdH,    // sign-extended halfword
  kLdB,    // sign-extended byte
  kLdA,    // a[rd] = mem32[a[ra] + sext(imm16)]
  kStW,    // mem32[a[ra] + sext(imm16)] = d[rd]
  kStH,
  kStB,
  kStA,    // mem32[a[ra] + sext(imm16)] = a[rd]

  // Loop/branch pipeline (LP).
  kJ,     // PC += disp
  kJi,    // PC = a[ra]
  kCall,  // a11 = return address; PC += disp
  kCalli, // a11 = return address; PC = a[ra]
  kRet,   // PC = a11
  kJeq,   // if d[rd] == d[ra]: PC += disp
  kJne,
  kJlt,   // signed
  kJge,   // signed
  kJltu,
  kJgeu,
  kJz,    // if d[rd] == 0
  kJnz,
  kLoop,  // if --a[rd] != 0: PC += disp (zero-overhead after 1st iteration)

  kOpcodeCount,
};

inline constexpr unsigned kNumOpcodes = static_cast<unsigned>(Opcode::kOpcodeCount);
inline constexpr unsigned kInstrBytes = 4;

/// Which core pipeline an instruction issues to. The TC core issues at
/// most one instruction per pipe per cycle (IP + LS + LP dual/triple
/// issue); SYS instructions issue alone.
enum class Pipe : u8 { kIp, kLs, kLp, kSys };

/// Decoded instruction.
struct Instr {
  Opcode opcode = Opcode::kNop;
  u8 rd = 0;    // destination / first source for stores & compares
  u8 ra = 0;    // base / source
  u8 rb = 0;    // second source (register-register forms)
  i32 imm = 0;  // sign- or zero-extended as the opcode requires

  bool operator==(const Instr&) const = default;
};

/// Static properties of an opcode, indexed once at decode.
struct OpInfo {
  const char* mnemonic;
  Pipe pipe;
  bool is_load;
  bool is_store;
  bool is_branch;       // any control transfer
  bool is_cond_branch;  // conditional (includes LOOP)
  bool uses_rb;         // register-register form (rb lives in imm[3:0])
  u8 result_latency;    // cycles until the result register is forwardable
};

const OpInfo& op_info(Opcode op);

/// Encode to the 32-bit instruction word.
u32 encode(const Instr& instr);

/// Decode a 32-bit word. Unknown opcodes decode to an error.
Result<Instr> decode(u32 word);

/// Disassemble for logs and trace dumps, e.g. "add d1, d2, d3".
std::string format_instr(const Instr& instr);

/// Look up an opcode by mnemonic ("ld.w", "jeq", ...).
std::optional<Opcode> opcode_from_mnemonic(const std::string& mnemonic);

}  // namespace audo::isa
