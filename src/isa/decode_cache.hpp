// Host-side predecoded-instruction cache.
//
// The per-cycle fetch path used to call isa::decode() on every word of
// every refill — for steady-state code that re-decodes the same handful
// of loop bodies millions of times. Instead, every program section is
// predecoded once at Soc::load() time; fetch completion then looks the
// word up by address.
//
// Correctness is self-validating: lookup() takes the instruction word the
// fetch just read from memory and only returns the cached decode when the
// stored word still matches. Code modified at runtime (DMA into a
// scratchpad, stores over code) therefore misses and falls back to
// isa::decode() — the cache can accelerate, never alter, execution.
#pragma once

#include <vector>

#include "isa/isa.hpp"

namespace audo::isa {

class DecodeCache {
 public:
  /// Predecode a section image at `base`. Replaces any previously added
  /// range it overlaps (stale predecode from an earlier load). Words that
  /// fail to decode are cached as HALT — the same thing the fetch path
  /// does when executing garbage.
  void add_section(Addr base, const std::vector<u8>& bytes);

  /// Predecode one section image reachable at two address aliases (the
  /// cached/uncached flash pair). One shared entry array serves both
  /// bases, so invalidation by overlap-replacement through either alias
  /// drops the single range — no per-alias duplicate to forget.
  void add_section_aliased(Addr base_a, Addr base_b,
                           const std::vector<u8>& bytes);

  void clear() {
    ranges_.clear();
    last_ = 0;
  }
  bool empty() const { return ranges_.empty(); }

  /// Total predecoded instruction slots.
  usize entry_count() const;

  /// Cached decode of the word at `pc`, validated against `word` (the
  /// value just read from memory). Returns nullptr when `pc` is outside
  /// every predecoded range or the memory content changed since load.
  const Instr* lookup(Addr pc, u32 word) const {
    // Fetch streams stay inside one section for long stretches: check the
    // last-hit range first, then scan (programs have a handful of
    // sections, so the cold scan is short).
    if (last_ < ranges_.size()) {
      if (const Instr* hit = ranges_[last_].find(pc, word)) return hit;
      if (ranges_[last_].contains(pc)) return nullptr;  // modified word
    }
    for (usize r = 0; r < ranges_.size(); ++r) {
      if (r == last_) continue;
      if (!ranges_[r].contains(pc)) continue;
      last_ = r;
      return ranges_[r].find(pc, word);
    }
    return nullptr;
  }

 private:
  struct Entry {
    u32 word = 0;
    Instr instr;
  };

  /// Shared alias-aware overlap replacement used by both add paths.
  void drop_overlapping(Addr base, u32 span);
  static std::vector<Entry> predecode_section(const std::vector<u8>& bytes,
                                              usize words);
  static constexpr Addr kNoAlias = ~Addr{0};

  struct Range {
    Addr base = 0;
    Addr base2 = kNoAlias;  // optional second alias of the same words
    u32 bytes = 0;
    std::vector<Entry> entries;

    bool contains(Addr pc) const {
      // Unsigned wrap rejects pc < base.
      return pc - base < bytes || (base2 != kNoAlias && pc - base2 < bytes);
    }
    const Instr* find(Addr pc, u32 word) const {
      Addr off = pc - base;
      if (off >= bytes) {
        if (base2 == kNoAlias) return nullptr;
        off = pc - base2;
        if (off >= bytes) return nullptr;
      }
      const Entry& e = entries[off / kInstrBytes];
      return e.word == word ? &e.instr : nullptr;
    }
  };

  std::vector<Range> ranges_;
  // Single-simulation-thread locality hint; each Soc owns its own cache,
  // so this never crosses threads.
  mutable usize last_ = 0;
};

}  // namespace audo::isa
