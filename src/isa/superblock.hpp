// Superblock predecode for the fast execution tier (DESIGN.md,
// "Execution tiers").
//
// A superblock is a chunk of straight-line code predecoded into a dense
// array of operation records: for every word, the decoded instruction
// plus everything the per-cycle issue loop otherwise recomputes — pipe,
// result latency, the source/destination register sets behind the
// scoreboard checks, and a per-opcode execute functor. The fast tier in
// cpu::Cpu walks these arrays with a function-pointer dispatch loop
// instead of re-deriving the same metadata for the same loop body
// millions of times.
//
// Correctness follows the decode cache's word-validation story: every
// record stores the raw memory word it was decoded from, and the fast
// tier compares records against memory before consuming them — code
// modified at runtime mismatches and falls back to the accurate stepper
// (which re-reads memory and re-decodes). On top of that, the owning Soc
// routes every runtime code-write path (scratchpad stores, DMA, program
// reload, snapshot restore) through one shared invalidation funnel that
// drops the affected chunks eagerly.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "isa/isa.hpp"

namespace audo::isa {

/// One predecoded word of a superblock.
struct SuperOp {
  /// Behaviour bits consulted by the fast issue loop.
  enum Flags : u8 {
    kLoad = 1u << 0,
    kStore = 1u << 1,
    kBranch = 1u << 2,      // any control transfer
    kCondBranch = 1u << 3,  // taken-ness depends on register state
    /// The fast tier cannot execute this op (SYS-pipe ops other than NOP,
    /// and undecodable words): the cycle that would issue it falls back
    /// to the accurate stepper untouched.
    kBail = 1u << 4,
  };

  u32 word = 0;   // raw memory word the decode was made from
  Instr instr{};  // kHalt for undecodable words, same as the fetch path

  u8 pipe = 0;     // isa::Pipe
  u8 latency = 1;  // OpInfo::result_latency
  u8 flags = 0;

  /// Source registers, precomputed from the same table as the accurate
  /// stepper's hazard check: bit 7 selects the address file, low bits the
  /// index. `kNoReg` terminates the (always <= 3-entry) list.
  static constexpr u8 kNoReg = 0xFF;
  static constexpr u8 kAddrFile = 0x80;
  std::array<u8, 3> src{kNoReg, kNoReg, kNoReg};
  u8 dest = kNoReg;  // destination register, same encoding
};

/// A contiguous predecoded chunk of one code region. Chunks are aligned
/// and fixed-size (kChunkBytes), so lookup is one shift and invalidation
/// drops exactly the chunks a write overlaps.
struct Superblock {
  Addr base = 0;
  bool pspr = false;  // code scratchpad (vs. cached program flash)
  std::vector<SuperOp> ops;

  bool contains(Addr pc) const {
    return pc - base < ops.size() * kInstrBytes;
  }
  u32 index_of(Addr pc) const { return (pc - base) / kInstrBytes; }
};

/// Per-Soc cache of superblocks over the executable regions (PSPR and
/// the cached flash alias). Chunks build lazily on first entry and die
/// on invalidation; memory content is read through a region-supplied
/// reader so the cache stays free of memory-model dependencies.
class SuperblockCache {
 public:
  static constexpr u32 kChunkBytes = 1024;
  static constexpr u32 kChunkOps = kChunkBytes / kInstrBytes;

  /// Reads the 32-bit word at byte `offset` into the region's backing
  /// store, with no observable side effects (counters, fault hooks).
  using WordReader = u32 (*)(const void* ctx, u32 offset);

  struct Stats {
    u64 builds = 0;        // chunks predecoded
    u64 lookups = 0;       // window-entry lookups
    u64 invalidations = 0; // chunks dropped by the invalidation funnel
  };

  /// Register an executable region. Regions must not overlap.
  void add_region(Addr base, u32 bytes, bool pspr, WordReader reader,
                  const void* reader_ctx);

  /// The chunk containing `pc`, building it on first use. Null when `pc`
  /// lies outside every registered region.
  const Superblock* lookup(Addr pc);

  /// Drop every chunk overlapping [addr, addr + bytes) — the shared
  /// invalidation funnel for runtime code writes.
  void invalidate(Addr addr, u32 bytes);
  /// Drop everything (program reload, snapshot restore, injector attach).
  void invalidate_all();

  const Stats& stats() const { return stats_; }

 private:
  struct Region {
    Addr base = 0;
    u32 bytes = 0;
    bool pspr = false;
    WordReader reader = nullptr;
    const void* reader_ctx = nullptr;
    std::vector<std::unique_ptr<Superblock>> chunks;

    bool contains(Addr addr) const { return addr - base < bytes; }
  };

  Superblock* build(Region& region, u32 chunk_index);

  std::vector<Region> regions_;
  Stats stats_;
};

/// Populate a SuperOp from a raw word (decode + metadata precompute).
/// Exposed for tests; the cache uses it internally.
SuperOp predecode_word(u32 word);

}  // namespace audo::isa
