// Two-pass text assembler for the TRC ISA.
//
// Syntax (one statement per line, ';' or '#' starts a comment):
//
//   .text 0x80000000          ; open/continue a code section at an address
//   .data 0xC0000000          ; open/continue a data section
//   .word 1, 2, tbl           ; 32-bit values (symbols allowed)
//   .half 7                   ; 16-bit
//   .byte 0xFF
//   .space 64                 ; zero-filled bytes
//   .align 16                 ; pad to alignment (power of two)
//   .equ   N_CYL, 4           ; named constant
//
//   main:                     ; labels; text labels become profiler functions
//     movh  d1, hi(tbl)
//     ori   d1, d1, lo(tbl)
//     mov.ad a2, d1
//     ld.w  d2, [a2+4]
//     jne   d2, d0, main      ; branch targets may be labels or immediates
//
// Symbol arithmetic: lo(x) = x & 0xFFFF (pair with ori, zero-extended);
// hi(x) = x >> 16 (pair with ori/movh); hia(x) = (x + 0x8000) >> 16
// (pair with lea/addi, which sign-extend their 16-bit immediate).
// Expressions support a single chain of + and - over atoms.
#pragma once

#include <string>
#include <string_view>

#include "common/status.hpp"
#include "isa/program.hpp"

namespace audo::isa {

/// Assemble `source` into a Program. On error the status message includes
/// the 1-based line number.
Result<Program> assemble(std::string_view source);

}  // namespace audo::isa
