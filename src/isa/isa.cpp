#include "isa/isa.hpp"

#include <array>
#include <cstdio>
#include <unordered_map>

#include "common/bits.hpp"

namespace audo::isa {
namespace {

constexpr OpInfo make_op(const char* mnemonic, Pipe pipe, bool load = false,
                         bool store = false, bool branch = false,
                         bool cond = false, bool uses_rb = false,
                         u8 latency = 1) {
  return OpInfo{mnemonic, pipe, load, store, branch, cond, uses_rb, latency};
}

// Table order must match the Opcode enum exactly; checked below.
constexpr std::array<OpInfo, kNumOpcodes> kOpTable = {{
    make_op("nop", Pipe::kSys),
    make_op("halt", Pipe::kSys),
    make_op("wfi", Pipe::kSys),
    make_op("ei", Pipe::kSys),
    make_op("di", Pipe::kSys),
    make_op("rfe", Pipe::kSys, false, false, /*branch=*/true),
    make_op("mfcr", Pipe::kSys),
    make_op("mtcr", Pipe::kSys),
    make_op("debug", Pipe::kSys),

    make_op("add", Pipe::kIp, false, false, false, false, true),
    make_op("sub", Pipe::kIp, false, false, false, false, true),
    make_op("and", Pipe::kIp, false, false, false, false, true),
    make_op("or", Pipe::kIp, false, false, false, false, true),
    make_op("xor", Pipe::kIp, false, false, false, false, true),
    make_op("shl", Pipe::kIp, false, false, false, false, true),
    make_op("shr", Pipe::kIp, false, false, false, false, true),
    make_op("sar", Pipe::kIp, false, false, false, false, true),
    make_op("mul", Pipe::kIp, false, false, false, false, true, 2),
    make_op("mac", Pipe::kIp, false, false, false, false, true, 2),
    make_op("div", Pipe::kIp, false, false, false, false, true, 8),
    make_op("min", Pipe::kIp, false, false, false, false, true),
    make_op("max", Pipe::kIp, false, false, false, false, true),
    make_op("abs", Pipe::kIp),
    make_op("addi", Pipe::kIp),
    make_op("andi", Pipe::kIp),
    make_op("ori", Pipe::kIp),
    make_op("xori", Pipe::kIp),
    make_op("shli", Pipe::kIp),
    make_op("shri", Pipe::kIp),
    make_op("sari", Pipe::kIp),
    make_op("movd", Pipe::kIp),
    make_op("movh", Pipe::kIp),
    make_op("mov.da", Pipe::kIp),

    make_op("mov.ad", Pipe::kLs),
    make_op("mov.a", Pipe::kLs),
    make_op("movha", Pipe::kLs),
    make_op("lea", Pipe::kLs),
    make_op("adda", Pipe::kLs, false, false, false, false, true),
    make_op("ld.w", Pipe::kLs, /*load=*/true, false, false, false, false, 2),
    make_op("ld.h", Pipe::kLs, /*load=*/true, false, false, false, false, 2),
    make_op("ld.b", Pipe::kLs, /*load=*/true, false, false, false, false, 2),
    make_op("ld.a", Pipe::kLs, /*load=*/true, false, false, false, false, 2),
    make_op("st.w", Pipe::kLs, false, /*store=*/true),
    make_op("st.h", Pipe::kLs, false, /*store=*/true),
    make_op("st.b", Pipe::kLs, false, /*store=*/true),
    make_op("st.a", Pipe::kLs, false, /*store=*/true),

    make_op("j", Pipe::kLp, false, false, true),
    make_op("ji", Pipe::kLp, false, false, true),
    make_op("call", Pipe::kLp, false, false, true),
    make_op("calli", Pipe::kLp, false, false, true),
    make_op("ret", Pipe::kLp, false, false, true),
    make_op("jeq", Pipe::kLp, false, false, true, true),
    make_op("jne", Pipe::kLp, false, false, true, true),
    make_op("jlt", Pipe::kLp, false, false, true, true),
    make_op("jge", Pipe::kLp, false, false, true, true),
    make_op("jltu", Pipe::kLp, false, false, true, true),
    make_op("jgeu", Pipe::kLp, false, false, true, true),
    make_op("jz", Pipe::kLp, false, false, true, true),
    make_op("jnz", Pipe::kLp, false, false, true, true),
    make_op("loop", Pipe::kLp, false, false, true, true),
}};

static_assert(kOpTable.size() == kNumOpcodes);

const std::unordered_map<std::string, Opcode>& mnemonic_map() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<std::string, Opcode>();
    for (unsigned i = 0; i < kNumOpcodes; ++i) {
      (*m)[kOpTable[i].mnemonic] = static_cast<Opcode>(i);
    }
    return m;
  }();
  return *map;
}

}  // namespace

const OpInfo& op_info(Opcode op) {
  const auto index = static_cast<unsigned>(op);
  assert(index < kNumOpcodes);
  return kOpTable[index];
}

u32 encode(const Instr& instr) {
  const OpInfo& info = op_info(instr.opcode);
  u32 word = 0;
  word = insert_bits(word, 24, 8, static_cast<u32>(instr.opcode));
  word = insert_bits(word, 20, 4, instr.rd & 0xF);
  word = insert_bits(word, 16, 4, instr.ra & 0xF);
  u32 imm_field;
  if (info.uses_rb) {
    imm_field = instr.rb & 0xF;
  } else {
    imm_field = static_cast<u32>(instr.imm) & 0xFFFF;
  }
  word = insert_bits(word, 0, 16, imm_field);
  return word;
}

Result<Instr> decode(u32 word) {
  const u32 op_field = bits(word, 24, 8);
  if (op_field >= kNumOpcodes) {
    return error(StatusCode::kDecodeError,
                 "unknown opcode " + std::to_string(op_field));
  }
  Instr instr;
  instr.opcode = static_cast<Opcode>(op_field);
  instr.rd = static_cast<u8>(bits(word, 20, 4));
  instr.ra = static_cast<u8>(bits(word, 16, 4));
  const OpInfo& info = op_info(instr.opcode);
  if (info.uses_rb) {
    instr.rb = static_cast<u8>(bits(word, 0, 4));
    instr.imm = 0;
  } else {
    instr.rb = 0;
    // Immediates are stored sign-extended; opcodes that need zero
    // extension (andi/ori/xori) mask at execute time.
    instr.imm = sign_extend(bits(word, 0, 16), 16);
  }
  return instr;
}

std::string format_instr(const Instr& instr) {
  const OpInfo& info = op_info(instr.opcode);
  char buf[64];
  const auto op = instr.opcode;
  if (info.uses_rb) {
    const char dst = (op == Opcode::kAdda) ? 'a' : 'd';
    std::snprintf(buf, sizeof buf, "%s %c%u, %c%u, %c%u", info.mnemonic, dst,
                  instr.rd, dst, instr.ra, dst, instr.rb);
  } else if (info.is_load || info.is_store) {
    const char reg = (op == Opcode::kLdA || op == Opcode::kStA) ? 'a' : 'd';
    std::snprintf(buf, sizeof buf, "%s %c%u, [a%u%+d]", info.mnemonic, reg,
                  instr.rd, instr.ra, instr.imm);
  } else if (info.is_cond_branch) {
    if (op == Opcode::kLoop) {
      std::snprintf(buf, sizeof buf, "loop a%u, %+d", instr.rd, instr.imm);
    } else if (op == Opcode::kJz || op == Opcode::kJnz) {
      std::snprintf(buf, sizeof buf, "%s d%u, %+d", info.mnemonic, instr.rd,
                    instr.imm);
    } else {
      std::snprintf(buf, sizeof buf, "%s d%u, d%u, %+d", info.mnemonic,
                    instr.rd, instr.ra, instr.imm);
    }
  } else {
    switch (op) {
      case Opcode::kJ:
      case Opcode::kCall:
        std::snprintf(buf, sizeof buf, "%s %+d", info.mnemonic, instr.imm);
        break;
      case Opcode::kJi:
      case Opcode::kCalli:
        std::snprintf(buf, sizeof buf, "%s a%u", info.mnemonic, instr.ra);
        break;
      case Opcode::kMovd:
        std::snprintf(buf, sizeof buf, "movd d%u, %d", instr.rd, instr.imm);
        break;
      case Opcode::kMovh:
        std::snprintf(buf, sizeof buf, "movh d%u, 0x%X", instr.rd,
                      static_cast<u32>(instr.imm) & 0xFFFF);
        break;
      case Opcode::kMovha:
        std::snprintf(buf, sizeof buf, "movha a%u, 0x%X", instr.rd,
                      static_cast<u32>(instr.imm) & 0xFFFF);
        break;
      case Opcode::kLea:
        std::snprintf(buf, sizeof buf, "lea a%u, [a%u%+d]", instr.rd, instr.ra,
                      instr.imm);
        break;
      case Opcode::kMovAD:
        std::snprintf(buf, sizeof buf, "mov.ad a%u, d%u", instr.rd, instr.ra);
        break;
      case Opcode::kMovDA:
        std::snprintf(buf, sizeof buf, "mov.da d%u, a%u", instr.rd, instr.ra);
        break;
      case Opcode::kMovA:
        std::snprintf(buf, sizeof buf, "mov.a a%u, a%u", instr.rd, instr.ra);
        break;
      case Opcode::kMfcr:
        std::snprintf(buf, sizeof buf, "mfcr d%u, %d", instr.rd, instr.imm);
        break;
      case Opcode::kMtcr:
        std::snprintf(buf, sizeof buf, "mtcr %d, d%u", instr.imm, instr.ra);
        break;
      case Opcode::kAbs:
        std::snprintf(buf, sizeof buf, "abs d%u, d%u", instr.rd, instr.ra);
        break;
      case Opcode::kAndi:
      case Opcode::kOri:
      case Opcode::kXori:
        // Zero-extended at execute time: display the raw 16-bit pattern.
        std::snprintf(buf, sizeof buf, "%s d%u, d%u, 0x%X", info.mnemonic,
                      instr.rd, instr.ra,
                      static_cast<u32>(instr.imm) & 0xFFFF);
        break;
      case Opcode::kAddi:
      case Opcode::kShli:
      case Opcode::kShri:
      case Opcode::kSari:
        std::snprintf(buf, sizeof buf, "%s d%u, d%u, %d", info.mnemonic,
                      instr.rd, instr.ra, instr.imm);
        break;
      default:
        std::snprintf(buf, sizeof buf, "%s", info.mnemonic);
        break;
    }
  }
  return buf;
}

std::optional<Opcode> opcode_from_mnemonic(const std::string& mnemonic) {
  const auto& map = mnemonic_map();
  const auto it = map.find(mnemonic);
  if (it == map.end()) return std::nullopt;
  return it->second;
}

}  // namespace audo::isa
