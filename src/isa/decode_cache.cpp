#include "isa/decode_cache.hpp"

#include <algorithm>

namespace audo::isa {

usize DecodeCache::entry_count() const {
  usize n = 0;
  for (const Range& r : ranges_) n += r.entries.size();
  return n;
}

namespace {

bool span_overlaps_base(Addr range_base, u32 range_bytes, Addr base, u32 span) {
  return base < range_base + range_bytes && range_base < base + span;
}

}  // namespace

std::vector<DecodeCache::Entry> DecodeCache::predecode_section(
    const std::vector<u8>& bytes, usize words) {
  std::vector<Entry> entries(words);
  for (usize w = 0; w < words; ++w) {
    u32 word = 0;
    for (unsigned b = 0; b < kInstrBytes; ++b) {
      word |= static_cast<u32>(bytes[w * kInstrBytes + b]) << (8 * b);
    }
    DecodeCache::Entry& e = entries[w];
    e.word = word;
    if (auto decoded = decode(word); decoded.is_ok()) {
      e.instr = decoded.value();
    } else {
      e.instr.opcode = Opcode::kHalt;  // garbage stops the core (cpu.cpp)
    }
  }
  return entries;
}

void DecodeCache::drop_overlapping(Addr base, u32 span) {
  // Drop stale ranges this load overlaps through either alias (lookup()
  // would still reject them by word comparison, but keeping them wastes
  // memory and scan time).
  ranges_.erase(std::remove_if(ranges_.begin(), ranges_.end(),
                               [&](const Range& r) {
                                 return span_overlaps_base(r.base, r.bytes,
                                                           base, span) ||
                                        (r.base2 != kNoAlias &&
                                         span_overlaps_base(r.base2, r.bytes,
                                                            base, span));
                               }),
                ranges_.end());
  last_ = 0;
}

void DecodeCache::add_section(Addr base, const std::vector<u8>& bytes) {
  // Whole words only; a trailing partial word is never a fetchable
  // instruction.
  const usize words = bytes.size() / kInstrBytes;
  if (words == 0) return;
  const u32 span = static_cast<u32>(words * kInstrBytes);

  drop_overlapping(base, span);

  Range range;
  range.base = base;
  range.bytes = span;
  range.entries = predecode_section(bytes, words);
  ranges_.push_back(std::move(range));
}

void DecodeCache::add_section_aliased(Addr base_a, Addr base_b,
                                      const std::vector<u8>& bytes) {
  const usize words = bytes.size() / kInstrBytes;
  if (words == 0) return;
  const u32 span = static_cast<u32>(words * kInstrBytes);

  drop_overlapping(base_a, span);
  drop_overlapping(base_b, span);

  Range range;
  range.base = base_a;
  range.base2 = base_b;
  range.bytes = span;
  range.entries = predecode_section(bytes, words);
  ranges_.push_back(std::move(range));
}

}  // namespace audo::isa
