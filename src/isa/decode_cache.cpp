#include "isa/decode_cache.hpp"

#include <algorithm>

namespace audo::isa {

usize DecodeCache::entry_count() const {
  usize n = 0;
  for (const Range& r : ranges_) n += r.entries.size();
  return n;
}

void DecodeCache::add_section(Addr base, const std::vector<u8>& bytes) {
  // Whole words only; a trailing partial word is never a fetchable
  // instruction.
  const usize words = bytes.size() / kInstrBytes;
  if (words == 0) return;
  const u32 span = static_cast<u32>(words * kInstrBytes);

  // Drop stale ranges this load overlaps (lookup() would still reject
  // them by word comparison, but keeping them wastes memory and scan
  // time).
  ranges_.erase(std::remove_if(ranges_.begin(), ranges_.end(),
                               [&](const Range& r) {
                                 return base < r.base + r.bytes &&
                                        r.base < base + span;
                               }),
                ranges_.end());
  last_ = 0;

  Range range;
  range.base = base;
  range.bytes = span;
  range.entries.resize(words);
  for (usize w = 0; w < words; ++w) {
    u32 word = 0;
    for (unsigned b = 0; b < kInstrBytes; ++b) {
      word |= static_cast<u32>(bytes[w * kInstrBytes + b]) << (8 * b);
    }
    Entry& e = range.entries[w];
    e.word = word;
    if (auto decoded = decode(word); decoded.is_ok()) {
      e.instr = decoded.value();
    } else {
      e.instr.opcode = Opcode::kHalt;  // garbage stops the core (cpu.cpp)
    }
  }
  ranges_.push_back(std::move(range));
}

}  // namespace audo::isa
