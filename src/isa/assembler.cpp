#include "isa/assembler.hpp"

#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "common/bits.hpp"
#include "isa/core_regs.hpp"
#include "isa/isa.hpp"

namespace audo::isa {
namespace {

struct Statement {
  int line = 0;
  Addr addr = 0;          // resolved in pass 1
  usize section = 0;      // index into sections
  std::string mnemonic;   // instruction mnemonic or directive (".word")
  std::vector<std::string> operands;
};

struct AsmError {
  int line;
  std::string message;
};

std::string trim(std::string_view s) {
  usize b = 0;
  usize e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Split on top-level commas (commas inside [...] or (...) do not split).
std::vector<std::string> split_operands(std::string_view s) {
  std::vector<std::string> out;
  int depth = 0;
  std::string cur;
  for (char c : s) {
    if (c == '[' || c == '(') ++depth;
    if (c == ']' || c == ')') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  const std::string last = trim(cur);
  if (!last.empty()) out.push_back(last);
  return out;
}

struct Reg {
  bool is_addr = false;
  u8 index = 0;
};

std::optional<Reg> parse_reg(std::string_view s) {
  if (s.size() < 2 || s.size() > 3) return std::nullopt;
  const char kind = static_cast<char>(std::tolower(static_cast<unsigned char>(s[0])));
  if (kind != 'd' && kind != 'a') return std::nullopt;
  unsigned idx = 0;
  for (usize i = 1; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return std::nullopt;
    idx = idx * 10 + static_cast<unsigned>(s[i] - '0');
  }
  if (idx > 15) return std::nullopt;
  return Reg{kind == 'a', static_cast<u8>(idx)};
}

std::optional<u16> core_reg_by_name(const std::string& name) {
  static const std::map<std::string, CoreReg> kNames = {
      {"coreid", CoreReg::kCoreId},   {"icr", CoreReg::kIcr},
      {"biv", CoreReg::kBiv},         {"ccnt_lo", CoreReg::kCcntLo},
      {"ccnt_hi", CoreReg::kCcntHi},  {"icnt", CoreReg::kIcnt},
      {"irqn", CoreReg::kIrqn},       {"btv", CoreReg::kBtv},
      {"scratch0", CoreReg::kScratch0},
      {"scratch1", CoreReg::kScratch1}};
  const auto it = kNames.find(lower(name));
  if (it == kNames.end()) return std::nullopt;
  return static_cast<u16>(it->second);
}

/// Expression evaluator: chains of +/- over atoms; atoms are numbers,
/// symbols, '.', or lo()/hi()/hia() of a sub-expression.
class Evaluator {
 public:
  Evaluator(const std::map<std::string, i64>& symbols, Addr here)
      : symbols_(symbols), here_(here) {}

  Result<i64> eval(std::string_view expr) const {
    usize pos = 0;
    auto value = parse_sum(expr, pos);
    if (!value.is_ok()) return value;
    skip_ws(expr, pos);
    if (pos != expr.size()) {
      return error(StatusCode::kParseError,
                   "trailing characters in expression: " + std::string(expr));
    }
    return value;
  }

 private:
  static void skip_ws(std::string_view s, usize& pos) {
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) ++pos;
  }

  Result<i64> parse_sum(std::string_view s, usize& pos) const {
    auto lhs = parse_atom(s, pos);
    if (!lhs.is_ok()) return lhs;
    i64 acc = lhs.value();
    for (;;) {
      skip_ws(s, pos);
      if (pos >= s.size() || (s[pos] != '+' && s[pos] != '-')) break;
      const char op = s[pos++];
      auto rhs = parse_atom(s, pos);
      if (!rhs.is_ok()) return rhs;
      acc = (op == '+') ? acc + rhs.value() : acc - rhs.value();
    }
    return acc;
  }

  Result<i64> parse_atom(std::string_view s, usize& pos) const {
    skip_ws(s, pos);
    if (pos >= s.size()) {
      return error(StatusCode::kParseError, "expected expression atom");
    }
    if (s[pos] == '-') {
      ++pos;
      auto inner = parse_atom(s, pos);
      if (!inner.is_ok()) return inner;
      return -inner.value();
    }
    if (s[pos] == '+') {  // unary plus (e.g. the "+off" half of [aN+off])
      ++pos;
      return parse_atom(s, pos);
    }
    if (s[pos] == '(') {
      ++pos;
      auto inner = parse_sum(s, pos);
      if (!inner.is_ok()) return inner;
      skip_ws(s, pos);
      if (pos >= s.size() || s[pos] != ')') {
        return error(StatusCode::kParseError, "expected ')'");
      }
      ++pos;
      return inner;
    }
    if (s[pos] == '.') {
      // '.' = address of the current statement, unless part of an
      // identifier (mnemonics with '.' never reach the evaluator).
      ++pos;
      return static_cast<i64>(here_);
    }
    if (std::isdigit(static_cast<unsigned char>(s[pos]))) {
      return parse_number(s, pos);
    }
    // Identifier: symbol or function call.
    const usize start = pos;
    while (pos < s.size() &&
           (std::isalnum(static_cast<unsigned char>(s[pos])) || s[pos] == '_')) {
      ++pos;
    }
    if (start == pos) {
      return error(StatusCode::kParseError,
                   std::string("unexpected character '") + s[pos] + "'");
    }
    std::string ident(s.substr(start, pos - start));
    skip_ws(s, pos);
    if (pos < s.size() && s[pos] == '(') {
      ++pos;
      auto inner = parse_sum(s, pos);
      if (!inner.is_ok()) return inner;
      skip_ws(s, pos);
      if (pos >= s.size() || s[pos] != ')') {
        return error(StatusCode::kParseError, "expected ')' after " + ident);
      }
      ++pos;
      const u32 v = static_cast<u32>(inner.value());
      const std::string fn = lower(ident);
      if (fn == "lo") return static_cast<i64>(v & 0xFFFF);
      if (fn == "hi") return static_cast<i64>(v >> 16);
      if (fn == "hia") return static_cast<i64>((v + 0x8000u) >> 16);
      return error(StatusCode::kParseError, "unknown function: " + ident);
    }
    const auto it = symbols_.find(ident);
    if (it == symbols_.end()) {
      return error(StatusCode::kNotFound, "undefined symbol: " + ident);
    }
    return it->second;
  }

  static Result<i64> parse_number(std::string_view s, usize& pos) {
    i64 value = 0;
    if (pos + 1 < s.size() && s[pos] == '0' &&
        (s[pos + 1] == 'x' || s[pos + 1] == 'X')) {
      pos += 2;
      const usize start = pos;
      while (pos < s.size() && std::isxdigit(static_cast<unsigned char>(s[pos]))) {
        const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(s[pos])));
        value = value * 16 + (std::isdigit(static_cast<unsigned char>(c))
                                  ? c - '0'
                                  : c - 'a' + 10);
        ++pos;
      }
      if (pos == start) {
        return error(StatusCode::kParseError, "malformed hex literal");
      }
      return value;
    }
    while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos]))) {
      value = value * 10 + (s[pos] - '0');
      ++pos;
    }
    return value;
  }

  const std::map<std::string, i64>& symbols_;
  Addr here_;
};

class Assembler {
 public:
  Result<Program> run(std::string_view source) {
    if (Status s = pass1(source); !s.is_ok()) return s;
    if (Status s = pass2(); !s.is_ok()) return s;
    Program program;
    for (Section& sec : sections_) program.add_section(std::move(sec));
    for (const auto& [name, info] : labels_) {
      program.add_symbol(Symbol{name, info.addr, info.in_text});
    }
    if (auto main_addr = program.symbol_addr("main"); main_addr.is_ok()) {
      program.set_entry(main_addr.value());
    } else if (!program.sections().empty()) {
      for (const Section& sec : program.sections()) {
        if (sec.name == ".text") {
          program.set_entry(sec.base);
          break;
        }
      }
    }
    return program;
  }

 private:
  struct LabelInfo {
    Addr addr;
    bool in_text;
  };

  Status fail(int line, std::string message) {
    std::string text = "line " + std::to_string(line) + ": " + std::move(message);
    // Echo the offending source line so multi-file/macro-generated input
    // stays diagnosable without counting lines by hand.
    const auto idx = static_cast<usize>(line - 1);
    if (line >= 1 && idx < source_lines_.size() && !source_lines_[idx].empty()) {
      text += " | " + source_lines_[idx];
    }
    return error(StatusCode::kParseError, std::move(text));
  }

  Status pass1(std::string_view source) {
    std::istringstream stream{std::string(source)};
    std::string raw;
    int line_no = 0;
    bool have_section = false;
    while (std::getline(stream, raw)) {
      ++line_no;
      source_lines_.push_back(trim(raw));  // verbatim, for fail() context
      // Strip comments.
      for (usize i = 0; i < raw.size(); ++i) {
        if (raw[i] == ';' || raw[i] == '#') {
          raw.resize(i);
          break;
        }
      }
      std::string text = trim(raw);
      // Leading labels (possibly several on one line).
      while (!text.empty()) {
        const usize colon = text.find(':');
        if (colon == std::string::npos) break;
        const std::string head = trim(text.substr(0, colon));
        // A label must be a plain identifier.
        bool ident = !head.empty();
        for (char c : head) {
          if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') ident = false;
        }
        if (!ident) break;
        if (!have_section) {
          return fail(line_no, "label before any .text/.data section");
        }
        if (labels_.count(head) != 0) {
          return fail(line_no, "duplicate label: " + head);
        }
        const Section& sec = sections_[current_section_];
        labels_[head] = LabelInfo{lc_, sec.name == ".text"};
        symbols_[head] = static_cast<i64>(lc_);
        text = trim(text.substr(colon + 1));
      }
      if (text.empty()) continue;

      // Split mnemonic from operand list.
      usize sp = 0;
      while (sp < text.size() && !std::isspace(static_cast<unsigned char>(text[sp]))) ++sp;
      Statement st;
      st.line = line_no;
      st.mnemonic = lower(text.substr(0, sp));
      st.operands = split_operands(trim(text.substr(sp)));

      if (st.mnemonic[0] == '.') {
        if (Status s = pass1_directive(st, have_section); !s.is_ok()) return s;
        continue;
      }
      if (!have_section) {
        return fail(line_no, "instruction before any .text section");
      }
      st.addr = lc_;
      st.section = current_section_;
      statements_.push_back(std::move(st));
      lc_ += kInstrBytes;
      sections_[current_section_].bytes.resize(lc_ - sections_[current_section_].base);
    }
    return Status::ok();
  }

  Status pass1_directive(const Statement& st, bool& have_section) {
    const Evaluator eval(symbols_, lc_);
    auto eval_op = [&](usize i) -> Result<i64> {
      if (i >= st.operands.size()) {
        return error(StatusCode::kParseError, "missing operand");
      }
      return eval.eval(st.operands[i]);
    };

    if (st.mnemonic == ".text" || st.mnemonic == ".data") {
      if (st.operands.size() != 1) {
        return fail(st.line, st.mnemonic + " requires an address operand");
      }
      auto addr = eval_op(0);
      if (!addr.is_ok()) return fail(st.line, addr.status().message());
      Section sec;
      sec.name = st.mnemonic;
      sec.base = static_cast<Addr>(addr.value());
      sections_.push_back(std::move(sec));
      current_section_ = sections_.size() - 1;
      lc_ = sections_[current_section_].base;
      have_section = true;
      return Status::ok();
    }
    if (st.mnemonic == ".equ") {
      if (st.operands.size() != 2) {
        return fail(st.line, ".equ requires NAME, VALUE");
      }
      auto value = eval.eval(st.operands[1]);
      if (!value.is_ok()) return fail(st.line, value.status().message());
      symbols_[st.operands[0]] = value.value();
      return Status::ok();
    }
    if (!have_section) {
      return fail(st.line, st.mnemonic + " before any section");
    }
    // Data-emitting directives are stored for pass 2 (operand values may
    // use forward label references); pass 1 only sizes them.
    usize size = 0;
    if (st.mnemonic == ".word") {
      size = 4 * st.operands.size();
    } else if (st.mnemonic == ".half") {
      size = 2 * st.operands.size();
    } else if (st.mnemonic == ".byte") {
      size = st.operands.size();
    } else if (st.mnemonic == ".space") {
      auto n = eval_op(0);
      if (!n.is_ok()) return fail(st.line, n.status().message());
      if (n.value() < 0) return fail(st.line, ".space size must be >= 0");
      size = static_cast<usize>(n.value());
    } else if (st.mnemonic == ".align") {
      auto n = eval_op(0);
      if (!n.is_ok()) return fail(st.line, n.status().message());
      if (n.value() <= 0 || !is_pow2(static_cast<u64>(n.value()))) {
        return fail(st.line, ".align requires a power of two");
      }
      const Addr aligned =
          static_cast<Addr>(align_up(lc_, static_cast<u64>(n.value())));
      size = aligned - lc_;
    } else {
      return fail(st.line, "unknown directive: " + st.mnemonic);
    }
    Statement stored = st;
    stored.addr = lc_;
    stored.section = current_section_;
    statements_.push_back(std::move(stored));
    lc_ += static_cast<Addr>(size);
    sections_[current_section_].bytes.resize(lc_ - sections_[current_section_].base);
    return Status::ok();
  }

  Status pass2() {
    for (const Statement& st : statements_) {
      if (st.mnemonic[0] == '.') {
        if (Status s = emit_data(st); !s.is_ok()) return s;
      } else {
        if (Status s = emit_instr(st); !s.is_ok()) return s;
      }
    }
    return Status::ok();
  }

  void store(const Statement& st, usize offset, u64 value, usize bytes) {
    Section& sec = sections_[st.section];
    const usize base = st.addr - sec.base + offset;
    for (usize i = 0; i < bytes; ++i) {
      sec.bytes[base + i] = static_cast<u8>(value >> (8 * i));
    }
  }

  Status emit_data(const Statement& st) {
    const Evaluator eval(symbols_, st.addr);
    usize unit = 0;
    if (st.mnemonic == ".word") unit = 4;
    else if (st.mnemonic == ".half") unit = 2;
    else if (st.mnemonic == ".byte") unit = 1;
    else return Status::ok();  // .space/.align: zero fill already done
    for (usize i = 0; i < st.operands.size(); ++i) {
      auto v = eval.eval(st.operands[i]);
      if (!v.is_ok()) return fail(st.line, v.status().message());
      store(st, i * unit, static_cast<u64>(v.value()), unit);
    }
    return Status::ok();
  }

  Result<Reg> require_reg(const Statement& st, usize i, bool addr_reg) {
    if (i >= st.operands.size()) {
      return error(StatusCode::kParseError, "missing register operand");
    }
    const auto reg = parse_reg(st.operands[i]);
    if (!reg) {
      return error(StatusCode::kParseError,
                   "expected register, got '" + st.operands[i] + "'");
    }
    if (reg->is_addr != addr_reg) {
      return error(StatusCode::kParseError,
                   std::string("expected ") + (addr_reg ? "a" : "d") +
                       "-register, got '" + st.operands[i] + "'");
    }
    return *reg;
  }

  /// Parse "[aN]", "[aN+expr]", "[aN-expr]".
  Result<std::pair<u8, i64>> parse_mem(const Statement& st, usize i) {
    if (i >= st.operands.size()) {
      return error(StatusCode::kParseError, "missing memory operand");
    }
    const std::string& op = st.operands[i];
    if (op.size() < 4 || op.front() != '[' || op.back() != ']') {
      return error(StatusCode::kParseError, "expected [aN+off], got '" + op + "'");
    }
    std::string inner = trim(std::string_view(op).substr(1, op.size() - 2));
    usize split = inner.size();
    int depth = 0;
    for (usize p = 0; p < inner.size(); ++p) {
      if (inner[p] == '(') ++depth;
      if (inner[p] == ')') --depth;
      if (depth == 0 && (inner[p] == '+' || inner[p] == '-')) {
        split = p;
        break;
      }
    }
    const auto base = parse_reg(trim(inner.substr(0, split)));
    if (!base || !base->is_addr) {
      return error(StatusCode::kParseError, "memory base must be an a-register");
    }
    i64 offset = 0;
    if (split < inner.size()) {
      const Evaluator eval(symbols_, st.addr);
      // Keep the sign with the expression.
      auto v = eval.eval(std::string_view(inner).substr(split));
      if (!v.is_ok()) return v.status();
      offset = v.value();
    }
    if (offset < -32768 || offset > 32767) {
      return error(StatusCode::kOutOfRange, "memory offset out of 16-bit range");
    }
    return std::pair<u8, i64>{base->index, offset};
  }

  Result<i64> eval_operand(const Statement& st, usize i) {
    if (i >= st.operands.size()) {
      return error(StatusCode::kParseError, "missing operand");
    }
    const Evaluator eval(symbols_, st.addr);
    return eval.eval(st.operands[i]);
  }

  /// Branch displacement in words to a target-address operand.
  Result<i32> branch_disp(const Statement& st, usize i) {
    auto target = eval_operand(st, i);
    if (!target.is_ok()) return target.status();
    const i64 delta = target.value() - static_cast<i64>(st.addr) - kInstrBytes;
    if (delta % kInstrBytes != 0) {
      return error(StatusCode::kInvalidArgument, "branch target not word aligned");
    }
    const i64 disp = delta / kInstrBytes;
    if (disp < -32768 || disp > 32767) {
      return error(StatusCode::kOutOfRange, "branch displacement out of range");
    }
    return static_cast<i32>(disp);
  }

  Status emit_instr(const Statement& st) {
    const auto opcode = opcode_from_mnemonic(st.mnemonic);
    if (!opcode) return fail(st.line, "unknown mnemonic: " + st.mnemonic);
    const OpInfo& info = op_info(*opcode);
    Instr instr;
    instr.opcode = *opcode;

    auto check = [&](usize want) -> Status {
      if (st.operands.size() != want) {
        return fail(st.line, st.mnemonic + " expects " + std::to_string(want) +
                                 " operand(s)");
      }
      return Status::ok();
    };

    using enum Opcode;
    const Opcode op = *opcode;
    Status s = Status::ok();
    const bool a_regs = (op == kAdda);

    if (info.uses_rb) {
      if (s = check(3); !s.is_ok()) return s;
      auto rd = require_reg(st, 0, a_regs);
      auto ra = require_reg(st, 1, a_regs);
      auto rb = require_reg(st, 2, a_regs);
      if (!rd.is_ok()) return fail(st.line, rd.status().message());
      if (!ra.is_ok()) return fail(st.line, ra.status().message());
      if (!rb.is_ok()) return fail(st.line, rb.status().message());
      instr.rd = rd.value().index;
      instr.ra = ra.value().index;
      instr.rb = rb.value().index;
    } else if (info.is_load || info.is_store) {
      if (s = check(2); !s.is_ok()) return s;
      const bool a_target = (op == kLdA || op == kStA);
      auto reg = require_reg(st, 0, a_target);
      if (!reg.is_ok()) return fail(st.line, reg.status().message());
      auto mem = parse_mem(st, 1);
      if (!mem.is_ok()) return fail(st.line, mem.status().message());
      instr.rd = reg.value().index;
      instr.ra = mem.value().first;
      instr.imm = static_cast<i32>(mem.value().second);
    } else {
      switch (op) {
        case kNop: case kHalt: case kWfi: case kEi: case kDi:
        case kRfe: case kRet: case kDebug:
          if (s = check(0); !s.is_ok()) return s;
          break;
        case kAbs: {
          if (s = check(2); !s.is_ok()) return s;
          auto rd = require_reg(st, 0, false);
          auto ra = require_reg(st, 1, false);
          if (!rd.is_ok()) return fail(st.line, rd.status().message());
          if (!ra.is_ok()) return fail(st.line, ra.status().message());
          instr.rd = rd.value().index;
          instr.ra = ra.value().index;
          break;
        }
        case kAddi: case kAndi: case kOri: case kXori:
        case kShli: case kShri: case kSari: {
          if (s = check(3); !s.is_ok()) return s;
          auto rd = require_reg(st, 0, false);
          auto ra = require_reg(st, 1, false);
          auto imm = eval_operand(st, 2);
          if (!rd.is_ok()) return fail(st.line, rd.status().message());
          if (!ra.is_ok()) return fail(st.line, ra.status().message());
          if (!imm.is_ok()) return fail(st.line, imm.status().message());
          if (imm.value() < -32768 || imm.value() > 65535) {
            return fail(st.line, "immediate out of 16-bit range");
          }
          instr.rd = rd.value().index;
          instr.ra = ra.value().index;
          instr.imm = static_cast<i32>(imm.value());
          break;
        }
        case kMovd: case kMovh: {
          if (s = check(2); !s.is_ok()) return s;
          auto rd = require_reg(st, 0, false);
          auto imm = eval_operand(st, 1);
          if (!rd.is_ok()) return fail(st.line, rd.status().message());
          if (!imm.is_ok()) return fail(st.line, imm.status().message());
          if (imm.value() < -32768 || imm.value() > 65535) {
            return fail(st.line, "immediate out of 16-bit range");
          }
          instr.rd = rd.value().index;
          instr.imm = static_cast<i32>(imm.value());
          break;
        }
        case kMovha: {
          if (s = check(2); !s.is_ok()) return s;
          auto rd = require_reg(st, 0, true);
          auto imm = eval_operand(st, 1);
          if (!rd.is_ok()) return fail(st.line, rd.status().message());
          if (!imm.is_ok()) return fail(st.line, imm.status().message());
          if (imm.value() < 0 || imm.value() > 65535) {
            return fail(st.line, "immediate out of 16-bit range");
          }
          instr.rd = rd.value().index;
          instr.imm = static_cast<i32>(imm.value());
          break;
        }
        case kLea: {
          if (s = check(2); !s.is_ok()) return s;
          auto rd = require_reg(st, 0, true);
          auto mem = parse_mem(st, 1);
          if (!rd.is_ok()) return fail(st.line, rd.status().message());
          if (!mem.is_ok()) return fail(st.line, mem.status().message());
          instr.rd = rd.value().index;
          instr.ra = mem.value().first;
          instr.imm = static_cast<i32>(mem.value().second);
          break;
        }
        case kMovAD: {
          if (s = check(2); !s.is_ok()) return s;
          auto rd = require_reg(st, 0, true);
          auto ra = require_reg(st, 1, false);
          if (!rd.is_ok()) return fail(st.line, rd.status().message());
          if (!ra.is_ok()) return fail(st.line, ra.status().message());
          instr.rd = rd.value().index;
          instr.ra = ra.value().index;
          break;
        }
        case kMovDA: {
          if (s = check(2); !s.is_ok()) return s;
          auto rd = require_reg(st, 0, false);
          auto ra = require_reg(st, 1, true);
          if (!rd.is_ok()) return fail(st.line, rd.status().message());
          if (!ra.is_ok()) return fail(st.line, ra.status().message());
          instr.rd = rd.value().index;
          instr.ra = ra.value().index;
          break;
        }
        case kMovA: {
          if (s = check(2); !s.is_ok()) return s;
          auto rd = require_reg(st, 0, true);
          auto ra = require_reg(st, 1, true);
          if (!rd.is_ok()) return fail(st.line, rd.status().message());
          if (!ra.is_ok()) return fail(st.line, ra.status().message());
          instr.rd = rd.value().index;
          instr.ra = ra.value().index;
          break;
        }
        case kJ: case kCall: {
          if (s = check(1); !s.is_ok()) return s;
          auto disp = branch_disp(st, 0);
          if (!disp.is_ok()) return fail(st.line, disp.status().message());
          instr.imm = disp.value();
          break;
        }
        case kJi: case kCalli: {
          if (s = check(1); !s.is_ok()) return s;
          auto ra = require_reg(st, 0, true);
          if (!ra.is_ok()) return fail(st.line, ra.status().message());
          instr.ra = ra.value().index;
          break;
        }
        case kJeq: case kJne: case kJlt: case kJge: case kJltu: case kJgeu: {
          if (s = check(3); !s.is_ok()) return s;
          auto rd = require_reg(st, 0, false);
          auto ra = require_reg(st, 1, false);
          auto disp = branch_disp(st, 2);
          if (!rd.is_ok()) return fail(st.line, rd.status().message());
          if (!ra.is_ok()) return fail(st.line, ra.status().message());
          if (!disp.is_ok()) return fail(st.line, disp.status().message());
          instr.rd = rd.value().index;
          instr.ra = ra.value().index;
          instr.imm = disp.value();
          break;
        }
        case kJz: case kJnz: {
          if (s = check(2); !s.is_ok()) return s;
          auto rd = require_reg(st, 0, false);
          auto disp = branch_disp(st, 1);
          if (!rd.is_ok()) return fail(st.line, rd.status().message());
          if (!disp.is_ok()) return fail(st.line, disp.status().message());
          instr.rd = rd.value().index;
          instr.imm = disp.value();
          break;
        }
        case kLoop: {
          if (s = check(2); !s.is_ok()) return s;
          auto rd = require_reg(st, 0, true);
          auto disp = branch_disp(st, 1);
          if (!rd.is_ok()) return fail(st.line, rd.status().message());
          if (!disp.is_ok()) return fail(st.line, disp.status().message());
          instr.rd = rd.value().index;
          instr.imm = disp.value();
          break;
        }
        case kMfcr: {
          if (s = check(2); !s.is_ok()) return s;
          auto rd = require_reg(st, 0, false);
          if (!rd.is_ok()) return fail(st.line, rd.status().message());
          instr.rd = rd.value().index;
          if (auto cr = core_reg_by_name(st.operands[1])) {
            instr.imm = *cr;
          } else {
            auto imm = eval_operand(st, 1);
            if (!imm.is_ok()) return fail(st.line, imm.status().message());
            instr.imm = static_cast<i32>(imm.value());
          }
          break;
        }
        case kMtcr: {
          if (s = check(2); !s.is_ok()) return s;
          if (auto cr = core_reg_by_name(st.operands[0])) {
            instr.imm = *cr;
          } else {
            auto imm = eval_operand(st, 0);
            if (!imm.is_ok()) return fail(st.line, imm.status().message());
            instr.imm = static_cast<i32>(imm.value());
          }
          auto ra = require_reg(st, 1, false);
          if (!ra.is_ok()) return fail(st.line, ra.status().message());
          instr.ra = ra.value().index;
          break;
        }
        default:
          return fail(st.line, "unhandled mnemonic: " + st.mnemonic);
      }
    }
    store(st, 0, encode(instr), kInstrBytes);
    return Status::ok();
  }

  std::vector<Section> sections_;
  std::vector<Statement> statements_;
  std::vector<std::string> source_lines_;
  std::map<std::string, LabelInfo> labels_;
  std::map<std::string, i64> symbols_;
  usize current_section_ = 0;
  Addr lc_ = 0;
};

}  // namespace

Result<Program> assemble(std::string_view source) {
  Assembler assembler;
  return assembler.run(source);
}

}  // namespace audo::isa
