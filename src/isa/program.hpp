// Program image: the output of the assembler and the input to SoC loading
// and to the function-level profiler (symbol map).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace audo::isa {

/// A contiguous block of initialised bytes at a fixed physical address.
struct Section {
  std::string name;
  Addr base = 0;
  std::vector<u8> bytes;

  Addr end() const { return base + static_cast<Addr>(bytes.size()); }
};

/// A named address. Code labels double as function symbols for the
/// profiler; data labels mark profile-relevant data structures (lookup
/// tables, shared variables).
struct Symbol {
  std::string name;
  Addr addr = 0;
  bool in_text = false;
};

class Program {
 public:
  /// Entry point (first .text address unless a "main" label exists).
  Addr entry() const { return entry_; }
  void set_entry(Addr addr) { entry_ = addr; }

  const std::vector<Section>& sections() const { return sections_; }
  std::vector<Section>& sections() { return sections_; }

  const std::vector<Symbol>& symbols() const { return symbols_; }

  void add_section(Section section) { sections_.push_back(std::move(section)); }
  void add_symbol(Symbol symbol) { symbols_.push_back(std::move(symbol)); }

  /// Address of a named symbol.
  Result<Addr> symbol_addr(const std::string& name) const {
    for (const Symbol& s : symbols_) {
      if (s.name == name) return s.addr;
    }
    return error(StatusCode::kNotFound, "symbol not found: " + name);
  }

  bool has_symbol(const std::string& name) const {
    return symbol_addr(name).is_ok();
  }

  /// Total initialised bytes across all sections.
  usize total_bytes() const {
    usize n = 0;
    for (const Section& s : sections_) n += s.bytes.size();
    return n;
  }

 private:
  Addr entry_ = 0;
  std::vector<Section> sections_;
  std::vector<Symbol> symbols_;
};

/// Maps program counters to function names. Built from a Program's text
/// labels: a function spans from its label to the next label in the same
/// section (or the section end).
class SymbolMap {
 public:
  SymbolMap() = default;
  explicit SymbolMap(const Program& program);

  /// Name of the function containing `pc`, or "?" if unmapped.
  const std::string& function_at(Addr pc) const;

  /// Name of the data symbol containing `addr` (data symbols span to the
  /// next data symbol or section end), or "?" if unmapped.
  const std::string& data_symbol_at(Addr addr) const;

  struct Range {
    Addr begin;
    Addr end;
    std::string name;
  };
  const std::vector<Range>& functions() const { return functions_; }
  const std::vector<Range>& data_objects() const { return data_; }

 private:
  static const std::string& lookup(const std::vector<Range>& ranges, Addr addr);

  std::vector<Range> functions_;  // sorted by begin
  std::vector<Range> data_;       // sorted by begin
};

}  // namespace audo::isa
