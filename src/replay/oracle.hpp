// The differential replay oracle: re-run a ReplaySpec under any host
// configuration and diff every recorded digest; on mismatch, bisect to
// the first divergent cycle and name the component/field that differs.
//
// Verification runs in three granularities, degrading only when the
// finer one is impossible:
//  * frame  — a reference run under the *recorded* config reproduced the
//    golden window digest, so its frames are trustworthy per-cycle
//    expectations; the first cycle whose fingerprint differs from the
//    test run is reported with per-field diffs and +/-N context frames.
//  * window — the reference run itself no longer matches the golden
//    (the simulator's behaviour drifted since the golden was recorded);
//    the report names the divergent window and the component
//    sub-digests that differ, with no per-cycle claims.
//  * campaign — fault-campaign goldens compare the classification hash
//    and per-scenario outcome rows; the first differing scenario is
//    reported.
//
// Reaching the divergent window is accelerated with soc::Snapshot
// checkpoints: plain-soc replays run chunked at window boundaries,
// saving a rolling checkpoint at each quiescent boundary, so the
// frame-by-frame re-step restores the nearest checkpoint instead of
// re-booting from reset. Session replays (MCDS instrumentation attached)
// fall back to a cold re-run bounded at the divergent window's end.
#pragma once

#include <string>
#include <vector>

#include "replay/replay.hpp"
#include "soc/soc_config.hpp"

namespace audo::replay {

inline constexpr const char* kDivergenceSchema = "trisim-divergence/1";

struct OracleOptions {
  /// Host-knob overrides; empty string / negative = replay as recorded.
  /// These never fail the config check — exec tier and fast-forward are
  /// host knobs, excluded from the fingerprint by design.
  std::string exec_tier;  // "", "accurate", "superblock"
  int fast_forward = -1;  // -1 recorded, 0 off, 1 on
  unsigned jobs = 0;      // campaign worker override; 0 = recorded

  /// Deliberate architecture mutations (knob=value) applied to the
  /// replayed config — the "seeded defect" the oracle must catch.
  std::vector<std::pair<std::string, u64>> mutations;

  /// Context frames reported on each side of the first divergent cycle.
  unsigned context_frames = 8;
};

/// One differing architectural field at the first divergent cycle.
struct FieldDiff {
  std::string component;
  std::string field;
  u64 expected = 0;
  u64 actual = 0;
};

/// One context row around the divergence: per-cycle fingerprints from
/// the reference (expected) and test (actual) runs.
struct ContextRow {
  u64 cycle = 0;
  u64 expected_fp = 0;
  u64 actual_fp = 0;
  bool match = false;
  bool missing = false;  // the test run produced no frame at this cycle
};

struct Divergence {
  bool found = false;
  std::string kind;  // "frame" | "window" | "campaign" | "summary"

  // Frame/window granularity.
  u64 window_index = 0;
  u64 window_start = 0;  // first cycle of the window
  u64 window_end = 0;    // one past the last cycle
  u64 cycle = 0;         // first divergent cycle (kind == "frame")
  bool frame_missing = false;
  bool checkpoint_used = false;
  u64 checkpoint_cycle = 0;
  std::vector<std::string> components;  // divergent component sub-digests
  std::vector<FieldDiff> fields;
  std::vector<ContextRow> context;

  // Campaign granularity.
  std::string scenario;
  std::string expected_outcome;
  std::string actual_outcome;
  u64 expected_cycles = 0;
  u64 actual_cycles = 0;
  u64 expected_signature = 0;
  u64 actual_signature = 0;
};

struct ReplayResult {
  bool passed = false;
  std::string golden;     // spec name
  std::string exec_tier;  // tier the test run actually used
  bool fast_forward = true;
  u64 cycles = 0;          // test-run length (frame replays)
  u64 frames = 0;          // canonical frames digested
  u64 windows_checked = 0;
  u64 campaign_scenarios = 0;  // scenario rows verified (campaign goldens)
  /// Summary-level keys that mismatched ("stream", "total_frames",
  /// "cycles", "instructions", "mcds_hash", "mcds_messages", "dag_hash",
  /// "classification_hash", "windows").
  std::vector<std::string> mismatches;
  Divergence divergence;

  /// Structured divergence report (schema trisim-divergence/1).
  std::string to_json() const;
  /// Human-readable verdict for the CLI.
  std::string format() const;
};

/// Apply one mutation knob to a config. Knobs: flash_ws, lmu_latency,
/// spr_latency, dflash_read, dflash_write, icache, dcache, issue_width.
Status apply_mutation(soc::SocConfig& config, const std::string& knob,
                      u64 value);

/// Re-run `spec` under `options` and verify every recorded digest.
/// Returns an error Status only when the scenario cannot be built at
/// all; a diverging replay returns a ReplayResult with passed == false.
Result<ReplayResult> run_replay(const ReplaySpec& spec,
                                const OracleOptions& options = {});

}  // namespace audo::replay
