#include "replay/oracle.hpp"

#include <algorithm>
#include <functional>
#include <optional>
#include <sstream>

#include "common/json.hpp"
#include "optimize/fault_campaign.hpp"
#include "profiling/dag.hpp"
#include "profiling/session.hpp"
#include "soc/snapshot.hpp"
#include "soc/soc.hpp"

namespace audo::replay {

namespace {

struct BuiltWorkload {
  isa::Program program;
  Addr tc_entry = 0;
  Addr pcp_entry = 0;
};

Result<BuiltWorkload> build_workload(const ScenarioSpec& s) {
  BuiltWorkload w;
  if (s.kind == "engine") {
    auto built = workload::build_engine_workload(s.engine);
    if (!built.is_ok()) return built.status();
    w.tc_entry = built.value().tc_entry;
    w.pcp_entry = built.value().pcp_entry;
    w.program = std::move(built).value().program;
  } else {
    auto built = workload::build_transmission_workload(s.transmission);
    if (!built.is_ok()) return built.status();
    w.tc_entry = built.value().tc_entry;
    w.program = std::move(built).value().program;
  }
  return w;
}

void configure_workload(soc::Soc& soc, const ScenarioSpec& s) {
  if (s.kind == "engine") {
    workload::configure_engine(soc, s.engine);
  } else {
    workload::configure_transmission(soc, s.transmission);
  }
}

/// Captures the full frame of every cycle in [lo, hi), expanding idle
/// skips into their per-cycle equivalents (an idle frame's non-cycle
/// fields are constant across the skip by definition).
class WindowCapture final : public soc::FrameObserver {
 public:
  WindowCapture(u64 lo, u64 hi) : lo_(lo), hi_(hi) {}

  void observe(const mcds::ObservationFrame& frame) override {
    next_ = frame.cycle;
    push(frame, next_);
    ++next_;
  }
  void skip_idle(const mcds::ObservationFrame& idle, u64 n) override {
    if (next_ < hi_ && next_ + n > lo_) {
      const u64 from = std::max(next_, lo_);
      const u64 to = std::min(next_ + n, hi_);
      for (u64 c = from; c < to; ++c) push(idle, c);
    }
    next_ += n;
  }

  /// Frame at `cycle`, or nullptr when the run never reached it.
  const mcds::ObservationFrame* at(u64 cycle) const {
    if (frames_.empty() || cycle < first_ ||
        cycle >= first_ + frames_.size()) {
      return nullptr;
    }
    return &frames_[cycle - first_];
  }

 private:
  void push(const mcds::ObservationFrame& f, u64 c) {
    if (c < lo_ || c >= hi_) return;
    if (frames_.empty()) first_ = c;
    frames_.push_back(f);
    frames_.back().cycle = c;
  }

  u64 lo_;
  u64 hi_;
  u64 next_ = 1;
  u64 first_ = 0;
  std::vector<mcds::ObservationFrame> frames_;
};

/// Everything one verification run produces.
struct FrameRun {
  soc::WindowedFrameDigest digest;
  u64 cycles = 0;
  u64 instructions = 0;
  u64 mcds_messages = 0;
  u64 mcds_hash = 0;
  u64 dag_hash = 0;

  explicit FrameRun(u32 bits) : digest(bits) {}
};

/// Rolling quiescent-boundary checkpoints from the chunked test run.
struct CheckpointStore {
  struct Entry {
    u64 cycle;
    soc::Snapshot snap;
  };
  std::vector<Entry> entries;  // ascending cycle

  const soc::Snapshot* best_at_or_before(u64 cycle) const {
    const soc::Snapshot* best = nullptr;
    for (const Entry& e : entries) {
      if (e.cycle <= cycle) best = &e.snap;
    }
    return best;
  }

  /// Drop entries older than the newest one at or below `keep_from` —
  /// windows before it are verified, so nothing will restore there.
  void prune(u64 keep_from) {
    usize keep = 0;
    for (usize i = 0; i < entries.size(); ++i) {
      if (entries[i].cycle <= keep_from) keep = i;
    }
    if (keep > 0) entries.erase(entries.begin(), entries.begin() + keep);
  }
};

/// Online per-window verdict; returning false stops the run.
using WindowCheck =
    std::function<bool(const soc::WindowedFrameDigest::Window&)>;

/// Plain-soc replay: chunked at window boundaries so flushed windows can
/// be verified while running and a quiescent snapshot can be saved at
/// each boundary. Chunking is invisible to the simulation (the budget
/// identity the exec-tier tests pin), so the digests are the same as one
/// uninterrupted run.
Status run_soc(const ScenarioSpec& scenario, const BuiltWorkload& w,
               const soc::SocConfig& cfg, u64 run_cycles, FrameRun& out,
               CheckpointStore* checkpoints, const WindowCheck& check,
               soc::FrameObserver* extra, bool* stopped_early) {
  soc::Soc soc(cfg);
  if (Status s = soc.load(w.program); !s.is_ok()) return s;
  configure_workload(soc, scenario);
  soc.add_frame_observer(&out.digest);
  if (extra != nullptr) soc.add_frame_observer(extra);
  soc.reset(w.tc_entry, w.pcp_entry);

  const u64 win = u64{1} << out.digest.window_bits();
  usize verified = 0;
  bool stop = false;
  const auto verify_flushed = [&](const std::vector<
                                  soc::WindowedFrameDigest::Window>& ws) {
    while (verified < ws.size() && !stop) {
      if (check && !check(ws[verified])) {
        stop = true;
        break;
      }
      ++verified;
    }
  };

  while (!stop && soc.cycle() < run_cycles && !soc.tc().halted()) {
    const u64 boundary = ((soc.cycle() / win) + 1) * win;
    const u64 target = std::min(boundary, run_cycles);
    const u64 ran = soc.run(target - soc.cycle());
    verify_flushed(out.digest.windows());
    if (checkpoints != nullptr && !stop) {
      checkpoints->prune(static_cast<u64>(verified) * win);
      if (soc.cycle() == boundary && soc.cycle() < run_cycles &&
          !soc.tc().halted() && soc.quiescent()) {
        auto snap = soc.save_snapshot();
        if (snap.is_ok()) {
          checkpoints->entries.push_back(
              {soc.cycle(), std::move(snap).value()});
        }
      }
    }
    if (ran == 0) break;  // idle deadlock: nothing further will happen
  }
  if (!stop) verify_flushed(out.digest.finish());

  out.cycles = soc.cycle();
  out.instructions = soc.tc().retired();
  if (stopped_early != nullptr) *stopped_early = stop;
  return Status::ok();
}

/// Re-step from the nearest checkpoint (or cold from reset) up to
/// `run_cycles`, feeding `cap` — the frame-by-frame half of bisection.
Status capture_soc(const ScenarioSpec& scenario, const BuiltWorkload& w,
                   const soc::SocConfig& cfg, u64 run_cycles,
                   const soc::Snapshot* boot, WindowCapture& cap) {
  soc::Soc soc(cfg);
  if (Status s = soc.load(w.program); !s.is_ok()) return s;
  configure_workload(soc, scenario);
  soc.add_frame_observer(&cap);
  soc.reset(w.tc_entry, w.pcp_entry);
  if (boot != nullptr) {
    if (Status s = soc.restore_snapshot(*boot); !s.is_ok()) return s;
  }
  while (soc.cycle() < run_cycles && !soc.tc().halted()) {
    if (soc.run(run_cycles - soc.cycle()) == 0) break;
  }
  return Status::ok();
}

/// Session replay: the golden carried MCDS instrumentation, so rebuild
/// the same ProfilingSession (trace digests must compare like-for-like)
/// and digest frames from its SoC. One uninterrupted run — snapshot
/// checkpoints don't apply here.
Status run_session(const ScenarioSpec& scenario, const BuiltWorkload& w,
                   const soc::SocConfig& cfg, u64 run_cycles, FrameRun& out,
                   soc::FrameObserver* extra) {
  profiling::SessionOptions so;
  so.resolution = scenario.session.resolution;
  so.program_trace = scenario.session.program_trace;
  so.irq_trace = scenario.session.irq_trace;
  so.dag = scenario.session.dag;
  profiling::ProfilingSession session(cfg, so);
  if (Status s = session.load(w.program); !s.is_ok()) return s;
  configure_workload(session.device().soc(), scenario);
  session.device().soc().add_frame_observer(&out.digest);
  if (extra != nullptr) session.device().soc().add_frame_observer(extra);
  session.reset(w.tc_entry, w.pcp_entry);
  const profiling::SessionResult result = session.run(run_cycles);
  out.digest.finish();
  out.cycles = result.cycles;
  out.instructions = result.tc_retired;
  out.mcds_messages = result.messages.size();
  out.mcds_hash = hash_messages(result.messages);
  if (session.dag() != nullptr) out.dag_hash = session.dag()->analysis().hash;
  return Status::ok();
}

/// Localize the divergence inside golden-window position `bad`: verify
/// the reference run still reproduces the golden there, re-step the
/// window on both machines and walk to the first differing cycle.
Status bisect_window(const ReplaySpec& spec, const OracleOptions& opts,
                     const soc::SocConfig& test_cfg, const BuiltWorkload& w,
                     usize bad, const FrameRun& test,
                     const CheckpointStore& checkpoints, Divergence& d) {
  const u32 bits = spec.digests.window_bits;
  const u64 win = u64{1} << bits;
  const auto& golden = spec.digests.windows;
  const u64 windex = bad < golden.size() ? golden[bad].index : bad;
  d.found = true;
  d.window_index = windex;
  d.window_start = windex * win + 1;
  d.window_end = (windex + 1) * win + 1;

  // Which component sub-digests disagree (available without any re-run).
  const auto& tws = test.digest.windows();
  if (bad < tws.size() && bad < golden.size() &&
      tws[bad].index == golden[bad].index) {
    for (unsigned c = 0; c < soc::WindowedFrameDigest::kNumComponents; ++c) {
      if (tws[bad].components[c] != golden[bad].components[c]) {
        d.components.push_back(soc::WindowedFrameDigest::component_name(c));
      }
    }
  }

  // Reference run under the *recorded* config, stopped at the window's
  // end. Its frames are only trusted as per-cycle expectations if it
  // still reproduces the golden digest of this window.
  const u64 budget = d.window_end - 1;
  FrameRun ref(bits);
  WindowCapture ref_cap(d.window_start, d.window_end);
  Status s = spec.scenario.session.enabled
                 ? run_session(spec.scenario, w, spec.config, budget, ref,
                               &ref_cap)
                 : run_soc(spec.scenario, w, spec.config, budget, ref, nullptr,
                           nullptr, &ref_cap, nullptr);
  if (!s.is_ok()) return s;
  ref.digest.finish();
  bool ref_ok = true;
  if (bad < golden.size()) {
    const auto& rws = ref.digest.windows();
    ref_ok = bad < rws.size() && rws[bad].index == golden[bad].index &&
             rws[bad].frames == golden[bad].frames &&
             rws[bad].digest == golden[bad].digest;
  }
  if (!ref_ok) {
    // The simulator no longer reproduces the golden even under the
    // recorded config — report at window granularity, no per-cycle
    // claims possible.
    d.kind = "window";
    return Status::ok();
  }

  // Test-side re-step: restore the nearest quiescent checkpoint when the
  // chunked run saved one, otherwise re-run cold.
  WindowCapture test_cap(d.window_start, d.window_end);
  if (spec.scenario.session.enabled) {
    FrameRun scratch(bits);
    s = run_session(spec.scenario, w, test_cfg, budget, scratch, &test_cap);
  } else {
    const soc::Snapshot* boot = checkpoints.best_at_or_before(windex * win);
    if (boot != nullptr) {
      d.checkpoint_used = true;
      d.checkpoint_cycle = boot->cycle;
    }
    s = capture_soc(spec.scenario, w, test_cfg, budget, boot, test_cap);
  }
  if (!s.is_ok()) return s;

  // First divergent cycle: fingerprints differ, or exactly one of the
  // runs stopped producing frames (earlier/later halt).
  const mcds::ObservationFrame* expected = nullptr;
  const mcds::ObservationFrame* actual = nullptr;
  u64 div_cycle = 0;
  for (u64 c = d.window_start; c < d.window_end; ++c) {
    const mcds::ObservationFrame* e = ref_cap.at(c);
    const mcds::ObservationFrame* a = test_cap.at(c);
    if (e == nullptr && a == nullptr) continue;
    if (e == nullptr || a == nullptr ||
        soc::frame_fingerprint(*e) != soc::frame_fingerprint(*a)) {
      expected = e;
      actual = a;
      div_cycle = c;
      d.frame_missing = e == nullptr || a == nullptr;
      break;
    }
  }
  if (div_cycle == 0) {
    // Window digests disagreed but every re-stepped frame matches —
    // should not happen; stay honest at window granularity.
    d.kind = "window";
    return Status::ok();
  }

  d.kind = "frame";
  d.cycle = div_cycle;
  if (expected != nullptr && actual != nullptr) {
    const auto efields = soc::enumerate_frame_fields(*expected);
    const auto afields = soc::enumerate_frame_fields(*actual);
    const usize n = std::min(efields.size(), afields.size());
    for (usize i = 0; i < n && d.fields.size() < 16; ++i) {
      // Past the first structural difference (variable-length SRI/IRQ
      // sections) positions stop lining up; the diverging count field
      // was already reported before that point.
      if (std::string_view(efields[i].component) !=
              std::string_view(afields[i].component) ||
          std::string_view(efields[i].field) !=
              std::string_view(afields[i].field)) {
        break;
      }
      if (efields[i].value != afields[i].value) {
        d.fields.push_back(FieldDiff{efields[i].component, efields[i].field,
                                     efields[i].value, afields[i].value});
      }
    }
    if (d.components.empty()) {
      for (const FieldDiff& f : d.fields) {
        if (std::find(d.components.begin(), d.components.end(), f.component) ==
            d.components.end()) {
          d.components.push_back(f.component);
        }
      }
    }
  }

  const u64 ctx = opts.context_frames;
  const u64 lo = div_cycle > d.window_start + ctx ? div_cycle - ctx
                                                  : d.window_start;
  const u64 hi = std::min(div_cycle + ctx + 1, d.window_end);
  for (u64 c = lo; c < hi; ++c) {
    const mcds::ObservationFrame* e = ref_cap.at(c);
    const mcds::ObservationFrame* a = test_cap.at(c);
    ContextRow row;
    row.cycle = c;
    row.expected_fp = e != nullptr ? soc::frame_fingerprint(*e) : 0;
    row.actual_fp = a != nullptr ? soc::frame_fingerprint(*a) : 0;
    row.missing = a == nullptr || e == nullptr;
    row.match = !row.missing && row.expected_fp == row.actual_fp;
    d.context.push_back(row);
  }
  return Status::ok();
}

Status frame_replay(const ReplaySpec& spec, const OracleOptions& opts,
                    const soc::SocConfig& cfg, const BuiltWorkload& w,
                    ReplayResult& result) {
  const u32 bits = spec.digests.window_bits;
  const auto& golden = spec.digests.windows;

  FrameRun test(bits);
  CheckpointStore checkpoints;
  usize checked = 0;
  std::optional<usize> bad;
  const auto window_matches =
      [&golden](usize i, const soc::WindowedFrameDigest::Window& wv) {
        return i < golden.size() && wv.index == golden[i].index &&
               wv.frames == golden[i].frames && wv.digest == golden[i].digest;
      };

  if (spec.scenario.session.enabled) {
    Status s = run_session(spec.scenario, w, cfg, spec.scenario.run_cycles,
                           test, nullptr);
    if (!s.is_ok()) return s;
    const auto& tws = test.digest.windows();
    while (checked < tws.size()) {
      if (!window_matches(checked, tws[checked])) {
        bad = checked;
        break;
      }
      ++checked;
    }
  } else {
    const WindowCheck check =
        [&](const soc::WindowedFrameDigest::Window& wv) {
          if (!window_matches(checked, wv)) {
            bad = checked;
            return false;
          }
          ++checked;
          return true;
        };
    bool stopped = false;
    Status s = run_soc(spec.scenario, w, cfg, spec.scenario.run_cycles, test,
                       &checkpoints, check, nullptr, &stopped);
    if (!s.is_ok()) return s;
  }

  result.cycles = test.cycles;
  result.frames = test.digest.total_frames();
  result.windows_checked = checked;

  if (!bad.has_value() && checked < golden.size()) {
    // The test run ended early (produced fewer windows than the golden).
    bad = checked;
  }
  if (bad.has_value()) {
    result.mismatches.push_back("windows");
    return bisect_window(spec, opts, cfg, w, *bad, test, checkpoints,
                         result.divergence);
  }

  // Every window matched; check the whole-run summary digests.
  if (test.digest.stream_digest() != spec.digests.stream) {
    result.mismatches.push_back("stream");
  }
  if (test.digest.total_frames() != spec.digests.total_frames) {
    result.mismatches.push_back("total_frames");
  }
  if (test.cycles != spec.cycles) result.mismatches.push_back("cycles");
  if (test.instructions != spec.instructions) {
    result.mismatches.push_back("instructions");
  }
  if (spec.scenario.session.enabled) {
    if (test.mcds_messages != spec.digests.mcds_messages) {
      result.mismatches.push_back("mcds_messages");
    }
    if (test.mcds_hash != spec.digests.mcds_hash) {
      result.mismatches.push_back("mcds_hash");
    }
    if (spec.scenario.session.dag && test.dag_hash != spec.digests.dag_hash) {
      result.mismatches.push_back("dag_hash");
    }
  }
  if (!result.mismatches.empty() && !result.divergence.found) {
    result.divergence.found = true;
    result.divergence.kind = "summary";
  }
  return Status::ok();
}

void run_campaign(const ReplaySpec& spec, const OracleOptions& opts,
                  const soc::SocConfig& cfg, const BuiltWorkload& w,
                  ReplayResult& result) {
  optimize::WorkloadCase wc;
  wc.name = spec.scenario.kind;
  wc.program = w.program;
  wc.tc_entry = w.tc_entry;
  wc.pcp_entry = w.pcp_entry;
  wc.configure = [scenario = spec.scenario](soc::Soc& soc) {
    configure_workload(soc, scenario);
  };
  wc.max_cycles = spec.campaign.budget_cycles;
  optimize::FaultCampaign campaign(cfg, std::move(wc));
  campaign.set_jobs(opts.jobs != 0 ? opts.jobs : spec.campaign.jobs);
  const std::vector<optimize::FaultScenario> plan =
      campaign.make_scenarios(spec.campaign.seed, spec.campaign.scenarios);
  const optimize::CampaignSummary summary = campaign.run(plan);
  result.campaign_scenarios = summary.runs.size();

  if (summary.classification_hash() == spec.campaign.classification_hash &&
      summary.runs.size() == spec.campaign.runs.size()) {
    return;
  }
  result.mismatches.push_back("classification_hash");
  Divergence& d = result.divergence;
  d.found = true;
  d.kind = "campaign";
  const usize n = std::min(summary.runs.size(), spec.campaign.runs.size());
  for (usize i = 0; i < n; ++i) {
    const optimize::ScenarioResult& got = summary.runs[i];
    const CampaignSpec::Run& want = spec.campaign.runs[i];
    const char* got_outcome = optimize::to_string(got.outcome);
    if (got.name != want.name || want.outcome != got_outcome ||
        got.cycles != want.cycles || got.signature != want.signature) {
      d.scenario = got.name;
      d.expected_outcome = want.outcome;
      d.actual_outcome = got_outcome;
      d.expected_cycles = want.cycles;
      d.actual_cycles = got.cycles;
      d.expected_signature = want.signature;
      d.actual_signature = got.signature;
      return;
    }
  }
  // All common rows agree: the counts differ (or the hash covers a field
  // the rows don't — either way, name the first uncovered scenario).
  d.scenario = "<scenario count>";
  d.expected_cycles = spec.campaign.runs.size();
  d.actual_cycles = summary.runs.size();
}

}  // namespace

Status apply_mutation(soc::SocConfig& config, const std::string& knob,
                      u64 value) {
  if (knob == "flash_ws") {
    config.pflash.wait_states = static_cast<unsigned>(value);
  } else if (knob == "lmu_latency") {
    config.lmu_latency = static_cast<unsigned>(value);
  } else if (knob == "spr_latency") {
    config.spr_slave_latency = static_cast<unsigned>(value);
  } else if (knob == "dflash_read") {
    config.dflash.read_latency = static_cast<unsigned>(value);
  } else if (knob == "dflash_write") {
    config.dflash.write_latency = static_cast<unsigned>(value);
  } else if (knob == "icache") {
    config.icache.enabled = value != 0;
  } else if (knob == "dcache") {
    config.dcache.enabled = value != 0;
  } else if (knob == "issue_width") {
    config.tc_issue_width = static_cast<unsigned>(value);
  } else {
    return error(StatusCode::kInvalidArgument,
                 "unknown mutation knob '" + knob +
                     "' (flash_ws, lmu_latency, spr_latency, dflash_read, "
                     "dflash_write, icache, dcache, issue_width)");
  }
  if (!config.valid()) {
    return error(StatusCode::kInvalidArgument,
                 "mutation " + knob + "=" + std::to_string(value) +
                     " makes the config invalid");
  }
  return Status::ok();
}

Result<ReplayResult> run_replay(const ReplaySpec& spec,
                                const OracleOptions& options) {
  ReplayResult result;
  result.golden = spec.name;

  soc::SocConfig cfg = spec.config;
  if (!options.exec_tier.empty()) {
    if (options.exec_tier == "accurate") {
      cfg.exec_tier = soc::SocConfig::ExecTier::kAccurate;
    } else if (options.exec_tier == "superblock") {
      cfg.exec_tier = soc::SocConfig::ExecTier::kSuperblock;
    } else {
      return error(StatusCode::kInvalidArgument,
                   "exec tier must be 'accurate' or 'superblock'");
    }
  }
  if (options.fast_forward >= 0) cfg.fast_forward = options.fast_forward != 0;
  for (const auto& [knob, value] : options.mutations) {
    if (Status s = apply_mutation(cfg, knob, value); !s.is_ok()) return s;
  }
  result.exec_tier = cfg.exec_tier == soc::SocConfig::ExecTier::kSuperblock
                         ? "superblock"
                         : "accurate";
  result.fast_forward = cfg.fast_forward;

  auto built = build_workload(spec.scenario);
  if (!built.is_ok()) return built.status();
  const BuiltWorkload& w = built.value();

  if (spec.campaign.enabled) {
    run_campaign(spec, options, cfg, w, result);
  }
  if (!spec.digests.windows.empty() || spec.digests.total_frames > 0) {
    if (Status s = frame_replay(spec, options, cfg, w, result); !s.is_ok()) {
      return s;
    }
  }

  result.passed = result.mismatches.empty() && !result.divergence.found;
  return result;
}

std::string ReplayResult::to_json() const {
  json::JsonWriter w;
  w.begin_object();
  w.kv("schema", kDivergenceSchema);
  w.kv("golden", golden);
  w.kv("passed", passed);
  w.kv("exec_tier", exec_tier);
  w.kv("fast_forward", fast_forward);
  w.kv("cycles", cycles);
  w.kv("frames", frames);
  w.kv("windows_checked", windows_checked);
  w.kv("campaign_scenarios", campaign_scenarios);
  w.key("mismatches");
  w.begin_array();
  for (const std::string& m : mismatches) w.value(m);
  w.end_array();
  w.key("divergence");
  w.begin_object();
  w.kv("found", divergence.found);
  w.kv("kind", divergence.kind);
  if (divergence.found &&
      (divergence.kind == "frame" || divergence.kind == "window")) {
    w.key("window");
    w.begin_object();
    w.kv("index", divergence.window_index);
    w.kv("start_cycle", divergence.window_start);
    w.kv("end_cycle", divergence.window_end);
    w.end_object();
    w.kv("cycle", divergence.cycle);
    w.kv("frame_missing", divergence.frame_missing);
    w.key("checkpoint");
    w.begin_object();
    w.kv("used", divergence.checkpoint_used);
    w.kv("cycle", divergence.checkpoint_cycle);
    w.end_object();
    w.key("components");
    w.begin_array();
    for (const std::string& c : divergence.components) w.value(c);
    w.end_array();
    w.key("fields");
    w.begin_array();
    for (const FieldDiff& f : divergence.fields) {
      w.begin_object();
      w.kv("component", f.component);
      w.kv("field", f.field);
      w.kv("expected", f.expected);
      w.kv("actual", f.actual);
      w.end_object();
    }
    w.end_array();
    w.key("context");
    w.begin_array();
    for (const ContextRow& r : divergence.context) {
      w.begin_object();
      w.kv("cycle", r.cycle);
      w.kv("expected_fp", r.expected_fp);
      w.kv("actual_fp", r.actual_fp);
      w.kv("match", r.match);
      w.kv("missing", r.missing);
      w.end_object();
    }
    w.end_array();
  }
  if (divergence.found && divergence.kind == "campaign") {
    w.key("scenario");
    w.begin_object();
    w.kv("name", divergence.scenario);
    w.kv("expected_outcome", divergence.expected_outcome);
    w.kv("actual_outcome", divergence.actual_outcome);
    w.kv("expected_cycles", divergence.expected_cycles);
    w.kv("actual_cycles", divergence.actual_cycles);
    w.kv("expected_signature", divergence.expected_signature);
    w.kv("actual_signature", divergence.actual_signature);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  std::string out = std::move(w).str();
  out.push_back('\n');
  return out;
}

std::string ReplayResult::format() const {
  std::ostringstream os;
  if (passed) {
    os << "PASS " << golden << ": ";
    if (campaign_scenarios > 0) {
      os << campaign_scenarios << " scenario classifications bit-identical";
      if (windows_checked > 0) os << ", ";
    }
    if (windows_checked > 0 || campaign_scenarios == 0) {
      os << windows_checked << " windows bit-identical (" << frames
         << " frames)";
    }
    os << " (tier " << exec_tier << ", ff " << (fast_forward ? "on" : "off")
       << ")\n";
    return os.str();
  }
  os << "FAIL " << golden << " (tier " << exec_tier << ", ff "
     << (fast_forward ? "on" : "off") << "): ";
  for (usize i = 0; i < mismatches.size(); ++i) {
    os << (i == 0 ? "" : ", ") << mismatches[i];
  }
  os << " mismatch\n";
  const Divergence& d = divergence;
  if (d.kind == "frame") {
    os << "  first divergence: cycle " << d.cycle << " (window "
       << d.window_index << ", cycles " << d.window_start << ".."
       << d.window_end - 1 << ")";
    if (d.checkpoint_used) {
      os << ", re-stepped from checkpoint at cycle " << d.checkpoint_cycle;
    }
    os << "\n";
    if (d.frame_missing) {
      os << "  one run produced no frame at this cycle (earlier halt)\n";
    }
    for (const FieldDiff& f : d.fields) {
      os << "    " << f.component << "." << f.field << ": expected "
         << f.expected << ", got " << f.actual << "\n";
    }
  } else if (d.kind == "window") {
    os << "  divergent window " << d.window_index << " (cycles "
       << d.window_start << ".." << d.window_end - 1 << "), components:";
    if (d.components.empty()) {
      os << " (unavailable)";
    } else {
      for (const std::string& c : d.components) os << " " << c;
    }
    os << "\n  (reference run no longer matches the golden — regenerate "
          "goldens if this change is intended)\n";
  } else if (d.kind == "campaign") {
    os << "  first divergent scenario: " << d.scenario << " — expected "
       << d.expected_outcome << "/" << d.expected_cycles << " cycles, got "
       << d.actual_outcome << "/" << d.actual_cycles << " cycles\n";
  }
  return os.str();
}

}  // namespace audo::replay
