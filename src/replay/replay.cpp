#include "replay/replay.hpp"

#include <fstream>
#include <sstream>

#include "common/json.hpp"

namespace audo::replay {

namespace {

using json::JsonValue;
using json::JsonWriter;

// ---- writer helpers ------------------------------------------------------

void write_engine_options(JsonWriter& w, const workload::EngineOptions& o) {
  w.begin_object();
  w.kv("pcp_offload", o.pcp_offload);
  w.kv("use_dma_for_adc", o.use_dma_for_adc);
  w.kv("table_dim", u64{o.table_dim});
  w.kv("tables_in_dspr", o.tables_in_dspr);
  w.kv("interpolate", o.interpolate);
  w.kv("measure_latency", o.measure_latency);
  w.kv("diag_words", u64{o.diag_words});
  w.kv("diag_uncached", o.diag_uncached);
  w.kv("diag_stride_bytes", u64{o.diag_stride_bytes});
  w.kv("journal_every", u64{o.journal_every});
  w.kv("can_ring_in_lmu", o.can_ring_in_lmu);
  w.kv("halt_after_revs", u64{o.halt_after_revs});
  w.kv("halt_after_bg", u64{o.halt_after_bg});
  w.kv("idle_background", o.idle_background);
  w.kv("rpm", u64{o.rpm});
  w.kv("crank_time_scale", u64{o.crank_time_scale});
  w.kv("stm_period", u64{o.stm_period});
  w.kv("adc_period", u64{o.adc_period});
  w.kv("can_rx_period", u64{o.can_rx_period});
  w.kv("wdt_period", u64{o.wdt_period});
  w.kv("prio_stm", u64{o.prio_stm});
  w.kv("prio_dma_done", u64{o.prio_dma_done});
  w.kv("prio_can_rx", u64{o.prio_can_rx});
  w.kv("prio_adc", u64{o.prio_adc});
  w.kv("prio_tooth", u64{o.prio_tooth});
  w.kv("prio_sync", u64{o.prio_sync});
  w.end_object();
}

void write_transmission_options(JsonWriter& w,
                                const workload::TransmissionOptions& o) {
  w.begin_object();
  w.kv("map_dim", u64{o.map_dim});
  w.kv("rpm", u64{o.rpm});
  w.kv("time_scale", u64{o.time_scale});
  w.kv("stm_period", u64{o.stm_period});
  w.kv("can_rx_period", u64{o.can_rx_period});
  w.kv("adc_period", u64{o.adc_period});
  w.kv("wdt_period", u64{o.wdt_period});
  w.kv("halt_after_tasks", u64{o.halt_after_tasks});
  w.kv("prio_stm", u64{o.prio_stm});
  w.kv("prio_can_rx", u64{o.prio_can_rx});
  w.kv("prio_adc", u64{o.prio_adc});
  w.kv("prio_pulse", u64{o.prio_pulse});
  w.kv("prio_sync", u64{o.prio_sync});
  w.end_object();
}

void write_cache(JsonWriter& w, const cache::CacheConfig& c) {
  w.begin_object();
  w.kv("enabled", c.enabled);
  w.kv("size_bytes", u64{c.size_bytes});
  w.kv("ways", u64{c.ways});
  w.kv("line_bytes", u64{c.line_bytes});
  w.kv("replacement", static_cast<u64>(c.replacement));
  w.end_object();
}

void write_config(JsonWriter& w, const soc::SocConfig& c) {
  w.begin_object();
  w.kv("name", c.name);
  w.kv("clock_hz", c.clock_hz);
  w.key("pflash");
  w.begin_object();
  w.kv("size", u64{c.pflash.size});
  w.kv("wait_states", u64{c.pflash.wait_states});
  w.kv("line_bytes", u64{c.pflash.line_bytes});
  w.kv("code_buffers", u64{c.pflash.code_buffers});
  w.kv("data_buffers", u64{c.pflash.data_buffers});
  w.kv("sequential_prefetch", c.pflash.sequential_prefetch);
  w.end_object();
  w.key("dflash");
  w.begin_object();
  w.kv("size", u64{c.dflash.size});
  w.kv("read_latency", u64{c.dflash.read_latency});
  w.kv("write_latency", u64{c.dflash.write_latency});
  w.end_object();
  w.key("icache");
  write_cache(w, c.icache);
  w.key("dcache");
  write_cache(w, c.dcache);
  w.kv("dspr_bytes", u64{c.dspr_bytes});
  w.kv("pspr_bytes", u64{c.pspr_bytes});
  w.kv("lmu_bytes", u64{c.lmu_bytes});
  w.kv("lmu_latency", u64{c.lmu_latency});
  w.kv("has_pcp", c.has_pcp);
  w.kv("pcp_pram_bytes", u64{c.pcp_pram_bytes});
  w.kv("pcp_dram_bytes", u64{c.pcp_dram_bytes});
  w.kv("tc_issue_width", u64{c.tc_issue_width});
  w.kv("dma_channels", u64{c.dma_channels});
  w.kv("arbitration", static_cast<u64>(c.arbitration));
  w.kv("spr_slave_latency", u64{c.spr_slave_latency});
  w.key("safety");
  w.begin_object();
  w.kv("monitor_enabled", c.safety.monitor_enabled);
  w.kv("ecc_pflash", c.safety.ecc_pflash);
  w.kv("ecc_sram", c.safety.ecc_sram);
  w.key("reactions");
  w.begin_array();
  for (const fault::Reaction r : c.safety.reactions) {
    w.value(static_cast<u64>(r));
  }
  w.end_array();
  w.end_object();
  w.kv("fast_forward", c.fast_forward);
  w.kv("exec_tier", c.exec_tier == soc::SocConfig::ExecTier::kSuperblock
                        ? "superblock"
                        : "accurate");
  w.end_object();
}

// ---- strict parse helpers ------------------------------------------------
//
// Every accessor appends to `err` on shape violations; the caller checks
// once at the end of each section. This keeps the happy path linear while
// still naming the first offending key.

struct Parser {
  std::string err;

  const JsonValue* object(const JsonValue& v, const char* key) {
    const JsonValue* m = v.find(key);
    if (m == nullptr || !m->is_object()) {
      fail(key, "missing object");
      return nullptr;
    }
    return m;
  }
  const JsonValue* array(const JsonValue& v, const char* key) {
    const JsonValue* m = v.find(key);
    if (m == nullptr || !m->is_array()) {
      fail(key, "missing array");
      return nullptr;
    }
    return m;
  }
  u64 num(const JsonValue& v, const char* key) {
    const JsonValue* m = v.find(key);
    if (m == nullptr || !m->is_number()) {
      fail(key, "missing number");
      return 0;
    }
    return m->as_u64();
  }
  bool boolean(const JsonValue& v, const char* key) {
    const JsonValue* m = v.find(key);
    if (m == nullptr || m->kind != JsonValue::Kind::kBool) {
      fail(key, "missing bool");
      return false;
    }
    return m->boolean;
  }
  std::string str(const JsonValue& v, const char* key) {
    const JsonValue* m = v.find(key);
    if (m == nullptr || !m->is_string()) {
      fail(key, "missing string");
      return {};
    }
    return m->string;
  }
  void fail(const char* key, const char* what) {
    if (err.empty()) err = std::string(what) + ": '" + key + "'";
  }
};

void parse_engine_options(Parser& p, const JsonValue& v,
                          workload::EngineOptions& o) {
  o.pcp_offload = p.boolean(v, "pcp_offload");
  o.use_dma_for_adc = p.boolean(v, "use_dma_for_adc");
  o.table_dim = static_cast<u32>(p.num(v, "table_dim"));
  o.tables_in_dspr = p.boolean(v, "tables_in_dspr");
  o.interpolate = p.boolean(v, "interpolate");
  o.measure_latency = p.boolean(v, "measure_latency");
  o.diag_words = static_cast<u32>(p.num(v, "diag_words"));
  o.diag_uncached = p.boolean(v, "diag_uncached");
  o.diag_stride_bytes = static_cast<u32>(p.num(v, "diag_stride_bytes"));
  o.journal_every = static_cast<u32>(p.num(v, "journal_every"));
  o.can_ring_in_lmu = p.boolean(v, "can_ring_in_lmu");
  o.halt_after_revs = static_cast<u32>(p.num(v, "halt_after_revs"));
  o.halt_after_bg = static_cast<u32>(p.num(v, "halt_after_bg"));
  o.idle_background = p.boolean(v, "idle_background");
  o.rpm = static_cast<u32>(p.num(v, "rpm"));
  o.crank_time_scale = static_cast<u32>(p.num(v, "crank_time_scale"));
  o.stm_period = static_cast<u32>(p.num(v, "stm_period"));
  o.adc_period = static_cast<u32>(p.num(v, "adc_period"));
  o.can_rx_period = static_cast<u32>(p.num(v, "can_rx_period"));
  o.wdt_period = static_cast<u32>(p.num(v, "wdt_period"));
  o.prio_stm = static_cast<u8>(p.num(v, "prio_stm"));
  o.prio_dma_done = static_cast<u8>(p.num(v, "prio_dma_done"));
  o.prio_can_rx = static_cast<u8>(p.num(v, "prio_can_rx"));
  o.prio_adc = static_cast<u8>(p.num(v, "prio_adc"));
  o.prio_tooth = static_cast<u8>(p.num(v, "prio_tooth"));
  o.prio_sync = static_cast<u8>(p.num(v, "prio_sync"));
}

void parse_transmission_options(Parser& p, const JsonValue& v,
                                workload::TransmissionOptions& o) {
  o.map_dim = static_cast<u32>(p.num(v, "map_dim"));
  o.rpm = static_cast<u32>(p.num(v, "rpm"));
  o.time_scale = static_cast<u32>(p.num(v, "time_scale"));
  o.stm_period = static_cast<u32>(p.num(v, "stm_period"));
  o.can_rx_period = static_cast<u32>(p.num(v, "can_rx_period"));
  o.adc_period = static_cast<u32>(p.num(v, "adc_period"));
  o.wdt_period = static_cast<u32>(p.num(v, "wdt_period"));
  o.halt_after_tasks = static_cast<u32>(p.num(v, "halt_after_tasks"));
  o.prio_stm = static_cast<u8>(p.num(v, "prio_stm"));
  o.prio_can_rx = static_cast<u8>(p.num(v, "prio_can_rx"));
  o.prio_adc = static_cast<u8>(p.num(v, "prio_adc"));
  o.prio_pulse = static_cast<u8>(p.num(v, "prio_pulse"));
  o.prio_sync = static_cast<u8>(p.num(v, "prio_sync"));
}

void parse_cache(Parser& p, const JsonValue& v, cache::CacheConfig& c) {
  c.enabled = p.boolean(v, "enabled");
  c.size_bytes = static_cast<u32>(p.num(v, "size_bytes"));
  c.ways = static_cast<unsigned>(p.num(v, "ways"));
  c.line_bytes = static_cast<unsigned>(p.num(v, "line_bytes"));
  c.replacement = static_cast<cache::Replacement>(p.num(v, "replacement"));
}

void parse_config(Parser& p, const JsonValue& v, soc::SocConfig& c) {
  c.name = p.str(v, "name");
  c.clock_hz = p.num(v, "clock_hz");
  if (const JsonValue* f = p.object(v, "pflash")) {
    c.pflash.size = static_cast<u32>(p.num(*f, "size"));
    c.pflash.wait_states = static_cast<unsigned>(p.num(*f, "wait_states"));
    c.pflash.line_bytes = static_cast<unsigned>(p.num(*f, "line_bytes"));
    c.pflash.code_buffers = static_cast<unsigned>(p.num(*f, "code_buffers"));
    c.pflash.data_buffers = static_cast<unsigned>(p.num(*f, "data_buffers"));
    c.pflash.sequential_prefetch = p.boolean(*f, "sequential_prefetch");
  }
  if (const JsonValue* f = p.object(v, "dflash")) {
    c.dflash.size = static_cast<u32>(p.num(*f, "size"));
    c.dflash.read_latency = static_cast<unsigned>(p.num(*f, "read_latency"));
    c.dflash.write_latency = static_cast<unsigned>(p.num(*f, "write_latency"));
  }
  if (const JsonValue* f = p.object(v, "icache")) parse_cache(p, *f, c.icache);
  if (const JsonValue* f = p.object(v, "dcache")) parse_cache(p, *f, c.dcache);
  c.dspr_bytes = static_cast<u32>(p.num(v, "dspr_bytes"));
  c.pspr_bytes = static_cast<u32>(p.num(v, "pspr_bytes"));
  c.lmu_bytes = static_cast<u32>(p.num(v, "lmu_bytes"));
  c.lmu_latency = static_cast<unsigned>(p.num(v, "lmu_latency"));
  c.has_pcp = p.boolean(v, "has_pcp");
  c.pcp_pram_bytes = static_cast<u32>(p.num(v, "pcp_pram_bytes"));
  c.pcp_dram_bytes = static_cast<u32>(p.num(v, "pcp_dram_bytes"));
  c.tc_issue_width = static_cast<unsigned>(p.num(v, "tc_issue_width"));
  c.dma_channels = static_cast<unsigned>(p.num(v, "dma_channels"));
  c.arbitration = static_cast<bus::ArbitrationPolicy>(p.num(v, "arbitration"));
  c.spr_slave_latency =
      static_cast<unsigned>(p.num(v, "spr_slave_latency"));
  if (const JsonValue* s = p.object(v, "safety")) {
    c.safety.monitor_enabled = p.boolean(*s, "monitor_enabled");
    c.safety.ecc_pflash = p.boolean(*s, "ecc_pflash");
    c.safety.ecc_sram = p.boolean(*s, "ecc_sram");
    if (const JsonValue* r = p.array(*s, "reactions")) {
      if (r->array.size() != fault::kNumAlarmKinds) {
        p.fail("reactions", "wrong array length for");
      } else {
        for (usize i = 0; i < r->array.size(); ++i) {
          c.safety.reactions[i] =
              static_cast<fault::Reaction>(r->array[i].as_u64());
        }
      }
    }
  }
  c.fast_forward = p.boolean(v, "fast_forward");
  const std::string tier = p.str(v, "exec_tier");
  if (tier == "superblock") {
    c.exec_tier = soc::SocConfig::ExecTier::kSuperblock;
  } else if (tier == "accurate") {
    c.exec_tier = soc::SocConfig::ExecTier::kAccurate;
  } else if (p.err.empty()) {
    p.fail("exec_tier", "unknown value for");
  }
}

}  // namespace

std::string ReplaySpec::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", kReplaySchema);
  w.kv("name", name);
  w.key("scenario");
  w.begin_object();
  w.kv("kind", scenario.kind);
  w.kv("run_cycles", scenario.run_cycles);
  w.key("engine");
  write_engine_options(w, scenario.engine);
  w.key("transmission");
  write_transmission_options(w, scenario.transmission);
  w.key("session");
  w.begin_object();
  w.kv("enabled", scenario.session.enabled);
  w.kv("resolution", u64{scenario.session.resolution});
  w.kv("program_trace", scenario.session.program_trace);
  w.kv("irq_trace", scenario.session.irq_trace);
  w.kv("dag", scenario.session.dag);
  w.end_object();
  w.end_object();
  w.key("config");
  write_config(w, config);
  w.kv("config_fingerprint", config_fingerprint);
  w.kv("cycles", cycles);
  w.kv("instructions", instructions);
  w.key("digests");
  w.begin_object();
  w.kv("window_bits", u64{digests.window_bits});
  w.kv("total_frames", digests.total_frames);
  w.kv("stream", digests.stream);
  w.kv("mcds_messages", digests.mcds_messages);
  w.kv("mcds_hash", digests.mcds_hash);
  w.kv("dag_hash", digests.dag_hash);
  w.key("windows");
  w.begin_array();
  for (const soc::WindowedFrameDigest::Window& win : digests.windows) {
    w.begin_object();
    w.kv("index", win.index);
    w.kv("frames", win.frames);
    w.kv("digest", win.digest);
    w.key("components");
    w.begin_array();
    for (const u64 c : win.components) w.value(c);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("campaign");
  w.begin_object();
  w.kv("enabled", campaign.enabled);
  w.kv("seed", campaign.seed);
  w.kv("scenarios", u64{campaign.scenarios});
  w.kv("jobs", u64{campaign.jobs});
  w.kv("budget_cycles", campaign.budget_cycles);
  w.kv("classification_hash", campaign.classification_hash);
  w.key("runs");
  w.begin_array();
  for (const CampaignSpec::Run& r : campaign.runs) {
    w.begin_object();
    w.kv("name", r.name);
    w.kv("outcome", r.outcome);
    w.kv("cycles", r.cycles);
    w.kv("signature", r.signature);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();
  std::string out = std::move(w).str();
  out.push_back('\n');
  return out;
}

Result<ReplaySpec> ReplaySpec::from_json(std::string_view text) {
  auto parsed = json::json_parse(text);
  if (!parsed.is_ok()) {
    return error(StatusCode::kParseError,
                 "replay spec: " + parsed.status().message());
  }
  const JsonValue& root = parsed.value();
  if (!root.is_object()) {
    return error(StatusCode::kParseError, "replay spec: not a JSON object");
  }
  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != kReplaySchema) {
    return error(StatusCode::kParseError,
                 "replay spec: schema is not '" + std::string(kReplaySchema) +
                     "' (got '" +
                     (schema != nullptr ? schema->string : "<missing>") + "')");
  }

  Parser p;
  ReplaySpec spec;
  spec.name = p.str(root, "name");
  if (const JsonValue* s = p.object(root, "scenario")) {
    spec.scenario.kind = p.str(*s, "kind");
    if (spec.scenario.kind != "engine" && spec.scenario.kind != "transmission") {
      p.fail("scenario.kind", "unknown value for");
    }
    spec.scenario.run_cycles = p.num(*s, "run_cycles");
    if (const JsonValue* e = p.object(*s, "engine")) {
      parse_engine_options(p, *e, spec.scenario.engine);
    }
    if (const JsonValue* t = p.object(*s, "transmission")) {
      parse_transmission_options(p, *t, spec.scenario.transmission);
    }
    if (const JsonValue* sess = p.object(*s, "session")) {
      spec.scenario.session.enabled = p.boolean(*sess, "enabled");
      spec.scenario.session.resolution =
          static_cast<u32>(p.num(*sess, "resolution"));
      spec.scenario.session.program_trace = p.boolean(*sess, "program_trace");
      spec.scenario.session.irq_trace = p.boolean(*sess, "irq_trace");
      spec.scenario.session.dag = p.boolean(*sess, "dag");
    }
  }
  if (const JsonValue* c = p.object(root, "config")) {
    parse_config(p, *c, spec.config);
  }
  spec.config_fingerprint = p.num(root, "config_fingerprint");
  spec.cycles = p.num(root, "cycles");
  spec.instructions = p.num(root, "instructions");
  if (const JsonValue* d = p.object(root, "digests")) {
    spec.digests.window_bits = static_cast<u32>(p.num(*d, "window_bits"));
    spec.digests.total_frames = p.num(*d, "total_frames");
    spec.digests.stream = p.num(*d, "stream");
    spec.digests.mcds_messages = p.num(*d, "mcds_messages");
    spec.digests.mcds_hash = p.num(*d, "mcds_hash");
    spec.digests.dag_hash = p.num(*d, "dag_hash");
    if (const JsonValue* ws = p.array(*d, "windows")) {
      for (const JsonValue& wv : ws->array) {
        if (!wv.is_object()) {
          p.fail("windows", "non-object element in");
          break;
        }
        soc::WindowedFrameDigest::Window win;
        win.index = p.num(wv, "index");
        win.frames = p.num(wv, "frames");
        win.digest = p.num(wv, "digest");
        if (const JsonValue* comps = p.array(wv, "components")) {
          if (comps->array.size() != win.components.size()) {
            p.fail("components", "wrong array length for");
          } else {
            for (usize i = 0; i < comps->array.size(); ++i) {
              win.components[i] = comps->array[i].as_u64();
            }
          }
        }
        spec.digests.windows.push_back(win);
      }
    }
  }
  if (const JsonValue* c = p.object(root, "campaign")) {
    spec.campaign.enabled = p.boolean(*c, "enabled");
    spec.campaign.seed = p.num(*c, "seed");
    spec.campaign.scenarios = static_cast<unsigned>(p.num(*c, "scenarios"));
    spec.campaign.jobs = static_cast<unsigned>(p.num(*c, "jobs"));
    spec.campaign.budget_cycles = p.num(*c, "budget_cycles");
    spec.campaign.classification_hash = p.num(*c, "classification_hash");
    if (const JsonValue* rs = p.array(*c, "runs")) {
      for (const JsonValue& rv : rs->array) {
        if (!rv.is_object()) {
          p.fail("runs", "non-object element in");
          break;
        }
        CampaignSpec::Run r;
        r.name = p.str(rv, "name");
        r.outcome = p.str(rv, "outcome");
        r.cycles = p.num(rv, "cycles");
        r.signature = p.num(rv, "signature");
        spec.campaign.runs.push_back(std::move(r));
      }
    }
  }
  if (!p.err.empty()) {
    return error(StatusCode::kParseError, "replay spec: " + p.err);
  }
  if (!spec.config.valid()) {
    return error(StatusCode::kParseError,
                 "replay spec: reconstructed SocConfig is invalid");
  }
  // The reconstructed config must hash back to the recorded fingerprint:
  // a spec whose knobs were edited by hand (or bit-rotted) is rejected
  // here, not mis-replayed. Oracle-applied mutations happen after load.
  if (spec.config.fingerprint() != spec.config_fingerprint) {
    return error(StatusCode::kParseError,
                 "replay spec: config fingerprint mismatch (file edited or "
                 "knob serialization drifted)");
  }
  return spec;
}

Status ReplaySpec::to_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return error(StatusCode::kNotFound, "cannot open " + path + " for write");
  }
  out << to_json();
  if (!out) {
    return error(StatusCode::kResourceExhausted, "short write to " + path);
  }
  return Status::ok();
}

Result<ReplaySpec> ReplaySpec::from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return error(StatusCode::kNotFound, "cannot open " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return from_json(buffer.str());
}

u64 hash_messages(const std::vector<mcds::TraceMessage>& messages) {
  u64 h = kFnvOffset;
  for (const mcds::TraceMessage& m : messages) {
    h = fnv1a(h, static_cast<u64>(m.kind));
    h = fnv1a(h, static_cast<u64>(m.source));
    h = fnv1a(h, m.cycle);
    h = fnv1a(h, m.pc);
    h = fnv1a(h, u64{m.instr_count});
    h = fnv1a(h, m.addr);
    h = fnv1a(h, u64{m.value});
    h = fnv1a(h, u64{m.write});
    h = fnv1a(h, u64{m.bytes});
    h = fnv1a(h, u64{m.group});
    h = fnv1a(h, u64{m.basis});
    h = fnv1a(h, u64{m.counts.size()});
    for (const u32 c : m.counts) h = fnv1a(h, u64{c});
    h = fnv1a(h, u64{m.id});
    h = fnv1a(h, u64{m.irq_entry});
  }
  return h;
}

}  // namespace audo::replay
