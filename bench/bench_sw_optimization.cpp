// E7 — §5: "For the customer this means an optimized hardware usage,
// identification of hot spots and data structures/variables that should
// be mapped to scratch pad memory".
//
// Regenerates: the full customer software-optimization loop —
//   1. profile the application: the data-object profile flags the
//      ignition/fuel lookup tables as hot flash residents;
//   2. apply the optimization (map the tables to the DSPR);
//   3. re-profile: measure the speedup and the flash-traffic reduction.
#include "bench_common.hpp"

#include <algorithm>

#include "profiling/function_profile.hpp"

using namespace audo;
using namespace audo::bench;

namespace {

struct Measurement {
  u64 cycles = 0;
  u64 flash_data_accesses = 0;
  u64 dspr_accesses = 0;
  std::string hottest_object;
  u64 hottest_reads = 0;
};

Measurement measure(bool tables_in_dspr, BenchTelemetry* tel = nullptr) {
  workload::EngineOptions opt;
  opt.rpm = 2000;
  opt.crank_time_scale = 120;  // high tooth rate: ISR load dominates
  opt.halt_after_bg = 300;     // compute-bound completion criterion
  opt.diag_words = 128;        // cache-polluting background sweep: the
  opt.diag_stride_bytes = 36;  // maps are evicted between teeth
  opt.tables_in_dspr = tables_in_dspr;
  auto w = workload::build_engine_workload(opt);
  if (!w.is_ok()) std::abort();

  profiling::SessionOptions opts;
  opts.resolution = 1000;
  opts.program_trace = true;
  opts.data_trace = true;
  opts.ed.emem.size_bytes = 8 * 1024 * 1024;
  opts.ed.emem.overlay_bytes = 0;
  // TC1796-class data side: no D-cache, just the flash read buffers —
  // the hardware generation where scratchpad mapping is the big win.
  soc::SocConfig chip;
  chip.dcache.enabled = false;
  profiling::ProfilingSession session(chip, opts);
  (void)session.load(w.value().program);
  workload::configure_engine(session.device().soc(), w.value().options);
  session.reset(w.value().tc_entry, w.value().pcp_entry);
  if (tel != nullptr) {
    tel->attach(session.device());
    tel->start();
  }
  // The engine accelerates through the run: the map working set sweeps
  // both tables (as in a real drive cycle), far exceeding the D-cache.
  while (!session.device().soc().tc().halted() &&
         session.device().soc().cycle() < 40'000'000) {
    session.device().run(20'000);
    auto& crank = session.device().soc().crank();
    crank.set_rpm(std::min(6400u, crank.rpm() + 300));
  }
  if (tel != nullptr) tel->stop();
  const auto result = session.run(0);

  Measurement m;
  m.cycles = result.cycles;
  m.flash_data_accesses =
      session.device().soc().pflash().stats().data_accesses;
  m.dspr_accesses = session.device().soc().dspr().reads() +
                    session.device().soc().dspr().writes();

  profiling::SystemProfiler profiler{isa::SymbolMap(w.value().program)};
  profiler.consume(result.messages);
  const auto data = profiler.data_profile();
  for (const auto& d : data) {
    if (d.name == "ign_table" || d.name == "fuel_table") {
      m.hottest_object = d.name;
      m.hottest_reads = d.reads;
      break;
    }
  }
  if (tel != nullptr) tel->finish();  // session dies with this scope
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  BenchTelemetry telemetry("bench_sw_optimization", args);

  header("E7: customer software optimization via system profiling",
         "profiling identifies lookup tables for scratchpad mapping; the "
         "remapping yields a measured speedup");

  std::printf("\nstep 1: profile the shipped application (tables in flash)\n");
  // Telemetry observes the shipped (pre-optimization) profiling run.
  const Measurement before = measure(false, &telemetry);
  std::printf("  cycles to 300 background iterations: %llu\n",
              static_cast<unsigned long long>(before.cycles));
  std::printf("  flash data-port accesses: %llu\n",
              static_cast<unsigned long long>(before.flash_data_accesses));
  std::printf("  hottest profiled data object: %s (%llu traced reads) -> "
              "scratchpad candidate\n",
              before.hottest_object.c_str(),
              static_cast<unsigned long long>(before.hottest_reads));

  std::printf("\nstep 2: apply the optimization (tables -> DSPR), re-profile\n");
  const Measurement after = measure(true);
  std::printf("  cycles to 300 background iterations: %llu\n",
              static_cast<unsigned long long>(after.cycles));
  std::printf("  flash data-port accesses: %llu\n",
              static_cast<unsigned long long>(after.flash_data_accesses));

  std::printf("\nresult: %.2f%% fewer cycles (%.3fx speedup), flash data "
              "traffic reduced %.1fx\n",
              100.0 * (static_cast<double>(before.cycles) -
                       static_cast<double>(after.cycles)) /
                  static_cast<double>(before.cycles),
              static_cast<double>(before.cycles) /
                  static_cast<double>(after.cycles),
              after.flash_data_accesses == 0
                  ? 0.0
                  : static_cast<double>(before.flash_data_accesses) /
                        static_cast<double>(after.flash_data_accesses));
  return 0;
}
