// E10 — §2/§3: the ED "consists of the unchanged product chip part
// extended by ... overlay RAM and a powerful trigger and trace unit";
// EDs "differ only in their slightly higher power consumption".
//
// Regenerates: product-chip-mode vs ED-mode equivalence over the whole
// workload suite (cycle counts and architectural results identical), the
// EMEM calibration overlay, and the honest counter-example: tool accesses
// through Cerberus DO occupy the product bus (they are the one ED
// activity that is not free).
#include "bench_common.hpp"

#include "ed/emulation_device.hpp"

using namespace audo;
using namespace audo::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  BenchTelemetry telemetry("bench_ed_equivalence", args);

  header("E10: Emulation Device == product chip + EEC",
         "the product-chip part is unchanged; observing it is free");

  mcds::McdsConfig trace_all;
  trace_all.program_trace = true;
  trace_all.data_trace = true;
  trace_all.irq_trace = true;
  trace_all.counter_groups = profiling::standard_groups(500);

  std::printf("\n%-20s %14s %14s %9s %12s\n", "workload", "chip cycles",
              "ED cycles", "equal?", "trace msgs");
  bool all_equal = true;
  bool telemetry_pending = telemetry.enabled();
  for (const auto& spec : workload::standard_suite()) {
    auto program = spec.build();
    if (!program.is_ok()) continue;

    soc::Soc chip{soc::SocConfig{}};
    (void)chip.load(program.value());
    chip.reset(program.value().entry());
    const u64 chip_cycles = chip.run(40'000'000);

    ed::EdConfig ed_cfg;
    ed_cfg.emem.size_bytes = 2 * 1024 * 1024;
    ed_cfg.emem.overlay_bytes = 128 * 1024;
    ed::EmulationDevice ed(soc::SocConfig{}, trace_all, ed_cfg);
    (void)ed.load(program.value());
    ed.reset(program.value().entry());
    // Host telemetry rides on the first ED run; the equality check below
    // then doubles as a live non-intrusiveness proof for the telemetry
    // layer itself.
    if (telemetry_pending) {
      telemetry.attach(ed);
      telemetry.start();
    }
    const u64 ed_cycles = ed.run(40'000'000);
    if (telemetry_pending) {
      telemetry.finish();  // ed dies with this iteration
      telemetry_pending = false;
    }

    const bool regs_equal = [&] {
      for (unsigned i = 0; i < 16; ++i) {
        if (chip.tc().d(i) != ed.soc().tc().d(i)) return false;
        if (chip.tc().a(i) != ed.soc().tc().a(i)) return false;
      }
      return chip.dspr().array() == ed.soc().dspr().array();
    }();
    const bool equal = chip_cycles == ed_cycles && regs_equal;
    all_equal = all_equal && equal;
    std::printf("%-20s %14llu %14llu %9s %12llu\n", spec.name,
                static_cast<unsigned long long>(chip_cycles),
                static_cast<unsigned long long>(ed_cycles),
                equal ? "yes" : "NO",
                static_cast<unsigned long long>(
                    ed.emem().total_pushed_messages()));
  }
  std::printf("=> full-trace observation is %s\n",
              all_equal ? "cycle-exact transparent" : "NOT transparent (BUG)");

  // Calibration overlay: the ED's original purpose (§3).
  {
    ed::EdConfig ed_cfg;
    ed::EmulationDevice ed(soc::SocConfig{}, mcds::McdsConfig{}, ed_cfg);
    ed.emem().overlay().write32(0x40, 1234);  // tool writes a map value
    std::printf("\ncalibration overlay: %u KiB of EMEM reserved; tool "
                "read-back of a written parameter: %u (expected 1234)\n",
                static_cast<unsigned>(ed.emem().config().overlay_bytes / 1024),
                ed.emem().overlay().read32(0x40));
  }

  // The honest exception: Cerberus tool accesses share the product bus.
  {
    auto program = workload::build_checksum(4096);
    if (program.is_ok()) {
      auto run_with_tool_traffic = [&](unsigned polls) {
        ed::EmulationDevice ed(soc::SocConfig{}, mcds::McdsConfig{},
                               ed::EdConfig{});
        (void)ed.load(program.value());
        ed.reset(program.value().entry());
        u64 extra = 0;
        for (unsigned i = 0; i < polls && !ed.soc().tc().halted(); ++i) {
          ed.run(2'000);
          ed.tool_read32(0xC0000000);  // monitor-style poll
          ++extra;
        }
        ed.run(40'000'000);
        return ed.soc().cycle();
      };
      const u64 quiet = run_with_tool_traffic(0);
      const u64 polled = run_with_tool_traffic(20);
      std::printf("\ntool-access cost: run with 20 Cerberus polls takes "
                  "%lld extra cycles (%.3f%%) — observation is free, "
                  "*access* is not\n",
                  static_cast<long long>(polled) - static_cast<long long>(quiet),
                  100.0 * (static_cast<double>(polled) - static_cast<double>(quiet)) /
                      static_cast<double>(quiet));
    }
  }
  return 0;
}
