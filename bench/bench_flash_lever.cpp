// E5 — §4: "Due to the high amount of CPU access to the flash (data and
// code) the path from CPU to flash is the main lever to increase the CPU
// system performance for the real application."
//
// Regenerates: (1) the access-mix and stall-cause breakdown of the engine
// application, showing where cycles go; (2) runtime sensitivity of the
// application to flash wait states vs LMU (on-chip SRAM) latency — the
// flash path must dominate.
#include <limits>

#include "bench_common.hpp"

using namespace audo;
using namespace audo::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  BenchTelemetry telemetry("bench_flash_lever", args);

  header("E5: the CPU-to-flash path is the main performance lever",
         "flash-path improvements move application runtime far more than "
         "equal-looking SRAM improvements");

  workload::EngineWorkload w = [] {
    workload::EngineOptions opt;
    opt.rpm = 4000;
    opt.crank_time_scale = 80;
    opt.table_dim = 64;
    opt.diag_words = 256;
    opt.diag_uncached = true;    // integrity checks read the array
    opt.diag_stride_bytes = 36;  // worst case for the read buffer
    opt.can_ring_in_lmu = true;  // give the LMU a real role
    opt.halt_after_bg = 400;     // compute-bound completion criterion
    auto built = workload::build_engine_workload(opt);
    if (!built.is_ok()) std::abort();
    return std::move(built).value();
  }();

  // --- breakdown on the baseline chip ---
  {
    soc::Soc soc{soc::SocConfig{}};
    (void)workload::install_engine(soc, w);
    // Telemetry observes this baseline run (a bare SoC, no ED wrapper).
    telemetry.attach(soc);
    telemetry.start();
    u64 stall[8] = {0};
    u64 retired_cycles = 0;
    const u64 budget = args.cycles != 0 ? args.cycles : 20'000'000;
    while (!soc.tc().halted() && soc.cycle() < budget) {
      soc.step();
      const auto& tc = soc.frame().tc;
      if (tc.retired > 0) {
        ++retired_cycles;
      } else {
        stall[static_cast<unsigned>(tc.stall)]++;
      }
    }
    const u64 total = soc.cycle();
    std::printf("\ncycle breakdown of the engine application (%llu cycles):\n",
                static_cast<unsigned long long>(total));
    std::printf("  %-22s %10llu (%5.1f%%)\n", "retiring",
                static_cast<unsigned long long>(retired_cycles),
                100.0 * retired_cycles / total);
    const char* cause_names[] = {"-",        "ifetch",   "load-use",
                                 "ls-port",  "exec-lat", "wfi",
                                 "halted"};
    for (unsigned c = 1; c <= 6; ++c) {
      if (stall[c] == 0) continue;
      std::printf("  stall: %-15s %10llu (%5.1f%%)\n", cause_names[c],
                  static_cast<unsigned long long>(stall[c]),
                  100.0 * stall[c] / total);
    }
    const auto& fs = soc.pflash().stats();
    std::printf("  flash: %llu code accesses (%.1f%% buffered), "
                "%llu data accesses (%.1f%% buffered), %llu port conflicts\n",
                static_cast<unsigned long long>(fs.code_accesses),
                fs.code_accesses ? 100.0 * fs.code_buffer_hits / fs.code_accesses : 0.0,
                static_cast<unsigned long long>(fs.data_accesses),
                fs.data_accesses ? 100.0 * fs.data_buffer_hits / fs.data_accesses : 0.0,
                static_cast<unsigned long long>(fs.port_conflict_cycles));
    telemetry.add_extra("retired_cycles", static_cast<double>(retired_cycles));
    telemetry.finish();  // soc dies with this scope
  }

  // --- sensitivity sweeps ---
  auto runtime_with = [&](unsigned flash_ws, unsigned lmu_lat) {
    soc::SocConfig cfg;
    cfg.pflash.wait_states = flash_ws;
    cfg.lmu_latency = lmu_lat;
    soc::Soc soc(cfg);
    (void)workload::install_engine(soc, w);
    return soc.run(40'000'000);
  };

  std::printf("\nruntime (cycles to %u background iterations) vs flash "
              "wait states (LMU fixed at 2):\n  ", w.options.halt_after_bg);
  const u64 base = runtime_with(5, 2);
  for (unsigned ws : {2u, 3u, 4u, 5u, 6u, 8u}) {
    const u64 c = runtime_with(ws, 2);
    std::printf("ws=%u:%llu(%+.1f%%)  ", ws,
                static_cast<unsigned long long>(c),
                100.0 * (static_cast<double>(c) - static_cast<double>(base)) /
                    static_cast<double>(base));
  }
  std::printf("\n\nruntime vs LMU latency (flash fixed at 5):\n  ");
  for (unsigned lat : {1u, 2u, 4u, 8u}) {
    const u64 c = runtime_with(5, lat);
    std::printf("lmu=%u:%llu(%+.1f%%)  ", lat,
                static_cast<unsigned long long>(c),
                100.0 * (static_cast<double>(c) - static_cast<double>(base)) /
                    static_cast<double>(base));
  }

  const u64 flash_span =
      runtime_with(8, 2) - runtime_with(2, 2);
  const u64 lmu_span = runtime_with(5, 8) - runtime_with(5, 1);
  std::printf("\n\nlever comparison: flash-path span %llu cycles vs "
              "SRAM-path span %llu cycles (%.1fx)\n",
              static_cast<unsigned long long>(flash_span),
              static_cast<unsigned long long>(lmu_span),
              lmu_span == 0 ? std::numeric_limits<double>::infinity()
                            : static_cast<double>(flash_span) /
                                  static_cast<double>(lmu_span));
  return 0;
}
