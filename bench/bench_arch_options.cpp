// E6 — §6: "This allows an objective assessment of improvement options by
// comparing their performance cost ratios" / "choose the ones with the
// best ratio between performance gain ... and development effort and area
// increase".
//
// Regenerates: the architecture-option ranking table over a customer-like
// workload suite (kernels + engine application with several HW/SW
// mappings, per §4: "different customers are using the same
// microcontroller in different ways").
#include "bench_common.hpp"

#include "optimize/evaluator.hpp"
#include "workload/transmission.hpp"

using namespace audo;
using namespace audo::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  BenchTelemetry telemetry("bench_arch_options", args);

  header("E6: quantitative option assessment by performance/cost ratio",
         "objective ranking of next-generation SoC options");

  optimize::ArchitectureEvaluator evaluator{soc::SocConfig{}};
  evaluator.set_jobs(args.jobs);

  // Kernel suite (one customer's algorithm mix).
  for (const auto& spec : workload::standard_suite()) {
    auto program = spec.build();
    if (!program.is_ok()) continue;
    optimize::WorkloadCase wc;
    wc.name = spec.name;
    wc.program = std::move(program).value();
    wc.tc_entry = wc.program.entry();
    evaluator.add_case(std::move(wc));
  }
  // The engine application under three different HW/SW mappings —
  // different customers solving the same problem differently (§4).
  auto add_engine = [&](const char* name, workload::EngineOptions opt,
                        double weight) {
    opt.halt_after_bg = 250;  // compute-bound completion
    opt.crank_time_scale = 100;
    opt.table_dim = 64;          // 32 KiB of maps
    opt.diag_words = 256;
    opt.diag_uncached = true;    // flash-integrity sweep hits the array
    opt.diag_stride_bytes = 36;
    auto engine = workload::build_engine_workload(opt);
    if (!engine.is_ok()) return;
    optimize::WorkloadCase wc;
    wc.name = name;
    wc.program = engine.value().program;
    wc.tc_entry = engine.value().tc_entry;
    wc.pcp_entry = engine.value().pcp_entry;
    wc.configure = [opt](soc::Soc& soc) {
      workload::configure_engine(soc, opt);
    };
    wc.weight = weight;
    evaluator.add_case(std::move(wc));
  };
  add_engine("engine_tc_only", {}, 2.0);
  {
    workload::EngineOptions opt;
    opt.pcp_offload = true;
    add_engine("engine_pcp_split", opt, 2.0);
  }
  {
    workload::EngineOptions opt;
    opt.use_dma_for_adc = true;
    add_engine("engine_dma_adc", opt, 1.0);
  }

  {
    // A second customer family: the transmission controller.
    workload::TransmissionOptions opt;
    opt.time_scale = 100;
    opt.halt_after_tasks = 60;
    auto tcu = workload::build_transmission_workload(opt);
    if (tcu.is_ok()) {
      optimize::WorkloadCase wc;
      wc.name = "transmission";
      wc.program = tcu.value().program;
      wc.tc_entry = tcu.value().tc_entry;
      wc.configure = [opt](soc::Soc& soc) {
        workload::configure_transmission(soc, opt);
      };
      wc.weight = 2.0;
      evaluator.add_case(std::move(wc));
    }
  }

  const auto catalogue = optimize::standard_catalogue();
  const auto results = evaluator.evaluate(catalogue);

  std::printf("\n%s\n",
              optimize::ArchitectureEvaluator::format_ranking(results).c_str());

  // Interaction check on the flash-path options: does the greedy
  // additivity assumption hold?
  {
    std::vector<optimize::ArchOption> top;
    for (const char* name :
         {"flash_ws_3", "cache_line_64", "dcache_16k", "read_buffers_4"}) {
      if (const auto* o = optimize::find_option(catalogue, name)) {
        top.push_back(*o);
      }
    }
    const auto interactions = evaluator.evaluate_interactions(top);
    std::printf("pairwise interactions (synergy 1.0 = independent gains):\n%s\n",
                optimize::ArchitectureEvaluator::format_interactions(
                    interactions).c_str());
  }

  std::printf("per-workload cycles for the top option (%s):\n",
              results.front().option.c_str());
  const auto base_runs = evaluator.run_config(evaluator.baseline());
  for (usize i = 0; i < base_runs.size(); ++i) {
    const auto& b = base_runs[i];
    const auto& v = results.front().runs[i];
    std::printf("  %-18s %10llu -> %10llu (%.3fx)\n", b.workload.c_str(),
                static_cast<unsigned long long>(b.cycles),
                static_cast<unsigned long long>(v.cycles),
                v.cycles ? static_cast<double>(b.cycles) / v.cycles : 0.0);
  }

  // The evaluator runs many short configs internally; for --report /
  // --perfetto, observe one representative baseline engine run instead.
  if (telemetry.enabled()) {
    auto engine = default_engine();
    soc::Soc soc{evaluator.baseline()};
    (void)workload::install_engine(soc, engine);
    telemetry.attach(soc);
    telemetry.start();
    soc.run(args.cycles != 0 ? args.cycles : 500'000);
    telemetry.add_extra("top_option_gain_per_cost",
                        results.front().gain_per_cost);
    telemetry.finish();
  }
  return 0;
}
