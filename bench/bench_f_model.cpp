// E9 — Figure 1 (F-model): evolutionary microcontroller generations.
// "Customers want to reuse their software from the last microcontroller
// generation unchanged"; the manufacturer profiles the current generation
// and folds the best-ratio options into the next one.
//
// Regenerates: two F-model iterations. The customer software (kernels +
// engine application) stays byte-identical across generations; each
// generation applies the best options under an area budget; performance
// grows monotonically.
#include "bench_common.hpp"

#include "optimize/evaluator.hpp"
#include "soc/presets.hpp"
#include "workload/transmission.hpp"

using namespace audo;
using namespace audo::bench;

namespace {

optimize::ArchitectureEvaluator make_evaluator(const soc::SocConfig& base,
                                               unsigned jobs) {
  optimize::ArchitectureEvaluator evaluator(base);
  evaluator.set_jobs(jobs);
  for (const char* name : {"lookup", "fir", "checksum", "sort", "matmul"}) {
    for (const auto& spec : workload::standard_suite()) {
      if (std::string_view(spec.name) != name) continue;
      auto program = spec.build();
      if (!program.is_ok()) continue;
      optimize::WorkloadCase wc;
      wc.name = name;
      wc.program = std::move(program).value();
      wc.tc_entry = wc.program.entry();
      evaluator.add_case(std::move(wc));
    }
  }
  workload::EngineOptions opt;
  opt.halt_after_bg = 250;  // compute-bound completion
  opt.crank_time_scale = 100;
  opt.table_dim = 64;          // 32 KiB of maps
  opt.diag_words = 256;
  opt.diag_uncached = true;    // flash-integrity sweep hits the array
  opt.diag_stride_bytes = 36;
  auto engine = workload::build_engine_workload(opt);
  if (engine.is_ok()) {
    optimize::WorkloadCase wc;
    wc.name = "engine";
    wc.program = engine.value().program;
    wc.tc_entry = engine.value().tc_entry;
    wc.configure = [opt](soc::Soc& soc) {
      workload::configure_engine(soc, opt);
    };
    wc.weight = 3.0;
    evaluator.add_case(std::move(wc));
  }
  {
    workload::TransmissionOptions topt;
    topt.time_scale = 100;
    topt.halt_after_tasks = 60;
    auto tcu = workload::build_transmission_workload(topt);
    if (tcu.is_ok()) {
      optimize::WorkloadCase wc;
      wc.name = "transmission";
      wc.program = tcu.value().program;
      wc.tc_entry = tcu.value().tc_entry;
      wc.configure = [topt](soc::Soc& soc) {
        workload::configure_transmission(soc, topt);
      };
      wc.weight = 2.0;
      evaluator.add_case(std::move(wc));
    }
  }
  return evaluator;
}

u64 suite_cycles(const optimize::ArchitectureEvaluator& evaluator,
                 const soc::SocConfig& config) {
  u64 total = 0;
  for (const auto& run : evaluator.run_config(config)) total += run.cycles;
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  BenchTelemetry telemetry("bench_f_model", args);

  header("E9: the F-model generational loop",
         "profile generation N, apply the best performance/cost options, "
         "ship generation N+1 running the unchanged customer software");

  constexpr double kBudgetPerGen = 250.0;
  // Generation 0 is the *previous* device generation (TC1796-like: no
  // D-cache, single prefetch buffer, slower flash). Historically, the
  // next generation (TC1797) added exactly the flash-path improvements
  // the methodology should rediscover here.
  soc::SocConfig generation = soc::tc1796_like();
  const auto catalogue = optimize::standard_catalogue();

  double prev_cycles = 0;
  for (int gen = 0; gen <= 2; ++gen) {
    optimize::ArchitectureEvaluator evaluator =
        make_evaluator(generation, args.jobs);
    const double area = evaluator.cost_model().soc_area(generation);
    const u64 cycles = suite_cycles(evaluator, generation);
    std::printf("\ngeneration %d: area %.1f au, suite runtime %llu cycles",
                gen, area, static_cast<unsigned long long>(cycles));
    if (gen > 0) {
      std::printf(" (%.2f%% faster than the previous generation)",
                  100.0 * (prev_cycles - static_cast<double>(cycles)) /
                      prev_cycles);
    }
    std::printf("\n");
    prev_cycles = static_cast<double>(cycles);
    if (gen == 2) break;

    std::vector<std::string> applied;
    generation = evaluator.next_generation(catalogue, kBudgetPerGen, &applied);
    generation.name = "gen" + std::to_string(gen + 1);
    std::printf("  profiling selects for gen %d (budget %.0f au):", gen + 1,
                kBudgetPerGen);
    for (const auto& name : applied) std::printf(" %s", name.c_str());
    if (applied.empty()) std::printf(" (nothing profitable fits)");
    std::printf("\n");
  }
  std::printf("\ncustomer software: byte-identical across all generations\n");

  // The F-model loop runs many short configs internally; for --report /
  // --perfetto, observe one engine run on the final generation.
  if (telemetry.enabled()) {
    auto engine = default_engine();
    soc::Soc soc{generation};
    (void)workload::install_engine(soc, engine);
    telemetry.attach(soc);
    telemetry.start();
    soc.run(args.cycles != 0 ? args.cycles : 500'000);
    telemetry.finish();
  }
  return 0;
}
