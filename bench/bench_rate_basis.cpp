// E2 — §5: "cache miss/hit/access events are measured as rates relating
// to executed instructions", because a per-cycle rate is meaningless when
// the CPU stalls (e.g. on high-latency accesses or bus contention).
//
// Regenerates: ONE program (an endless lookup loop, byte-identical in
// all phases) measured with the same event on two bases, while the
// environment changes: in the middle phase a DMA burst floods the flash
// data port, stalling the CPU. The per-CYCLE miss rate dips in that phase
// (suggesting the cache got better — false); the per-INSTRUCTION rate
// stays flat (the truth: the code's cache behaviour never changed).
#include "bench_common.hpp"

#include "isa/assembler.hpp"
#include "mem/memory_map.hpp"

using namespace audo;
using namespace audo::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  BenchTelemetry telemetry("bench_rate_basis", args);

  header("E2: event rates on an executed-instructions basis",
         "per-cycle event rates mislead under stalls; per-instruction "
         "rates reflect the code's behaviour");

  // Endless random lookups over a 32 KiB flash table (real dcache misses
  // with a 2 KiB dcache).
  auto program = isa::assemble(R"(
    .text 0x80000000
main:
    movha a15, 0xC000
    movh  d6, hi(table)
    ori   d6, d6, lo(table)
    movd  d0, 0x1234
    movh  d8, 25
    ori   d8, d8, 26125      ; 1664525
    movh  d9, 15470
    ori   d9, d9, 62303      ; 1013904223
    movd  d7, 0x7FFC
_lookup:
    mul   d0, d0, d8
    add   d0, d0, d9
    shri  d1, d0, 8
    and   d1, d1, d7
    add   d2, d6, d1
    mov.ad a2, d2
    ld.w  d3, [a2+0]
    xor   d5, d5, d3
    j     _lookup
    .data 0x80040000
table:
    .space 32768
)");
  if (!program.is_ok()) {
    std::printf("asm: %s\n", program.status().to_string().c_str());
    return 1;
  }

  profiling::SessionOptions opts;
  opts.standard_rates = false;
  mcds::CounterGroupConfig per_cycle;
  per_cycle.name = "per_cycle";
  per_cycle.basis = mcds::EventId::kCycles;
  per_cycle.resolution = 2000;
  per_cycle.counters = {{mcds::EventId::kTcDCacheMiss, {}, {}},
                        {mcds::EventId::kTcRetired, {}, {}},
                        {mcds::EventId::kBusContention, {}, {}}};
  mcds::CounterGroupConfig per_instr;
  per_instr.name = "per_instr";
  per_instr.basis = mcds::EventId::kTcRetired;
  per_instr.resolution = 2000;
  per_instr.counters = {{mcds::EventId::kTcDCacheMiss, {}, {}}};
  opts.extra_groups = {per_cycle, per_instr};

  soc::SocConfig chip;
  chip.dcache.size_bytes = 2 * 1024;
  profiling::ProfilingSession session(chip, opts);
  (void)session.load(program.value());
  session.reset(program.value().entry());

  // Environment phases: quiet / DMA flood of the flash data port / quiet.
  const u64 kSlice = args.cycles != 0 ? args.cycles / 3 : 300'000;
  auto& soc = session.device().soc();
  telemetry.attach(session.device());
  telemetry.start();
  session.device().run(kSlice);
  periph::DmaController::ChannelConfig flood;
  flood.src = mem::kPFlashUncachedBase + 0x60000;  // flash data port
  flood.dst = mem::kLmuBase;
  flood.count = 0xFFFFFFFF;
  flood.src_step = 64;  // strided: each DMA read occupies the array
  flood.dst_step = 0;
  soc.dma().setup_channel(0, flood, /*enabled=*/true);
  session.device().run(kSlice);
  soc.dma().enable_channel(0, false);
  session.device().run(kSlice);
  telemetry.stop();
  const auto result = session.run(0);

  const auto* mpc = result.find_series("per_cycle/tc.dcache.miss");
  const auto* ipc = result.find_series("per_cycle/tc.retired");
  const auto* bus = result.find_series("per_cycle/bus.contention");
  const auto* mpi = result.find_series("per_instr/tc.dcache.miss");
  if (mpc == nullptr || mpi == nullptr || ipc == nullptr || bus == nullptr) {
    return 1;
  }

  constexpr usize kBuckets = 15;
  const auto b_mpc = bucketize(*mpc, kBuckets);
  const auto b_ipc = bucketize(*ipc, kBuckets);
  const auto b_bus = bucketize(*bus, kBuckets);
  const auto b_mpi = bucketize(*mpi, kBuckets);
  auto row = [&](const char* name, const std::vector<double>& buckets) {
    std::printf("%-26s", name);
    for (double v : buckets) std::printf("%7.3f", v);
    std::printf("\n");
  };
  std::printf("\n%-26s", "time bucket");
  for (usize b = 0; b < kBuckets; ++b) std::printf("%7zu", b);
  std::printf("\n");
  row("IPC", b_ipc);
  row("bus contention / cycle", b_bus);
  row("D$ misses / cycle", b_mpc);
  row("D$ misses / instruction", b_mpi);

  auto phase_ratio = [&](const std::vector<double>& buckets) {
    double outer = 0, inner = 0;
    unsigned no = 0, ni = 0;
    for (usize i = 0; i < buckets.size(); ++i) {
      if (i >= buckets.size() / 3 && i < 2 * buckets.size() / 3) {
        inner += buckets[i];
        ++ni;
      } else {
        outer += buckets[i];
        ++no;
      }
    }
    inner /= ni;
    outer /= no;
    return outer == 0 ? 0.0 : inner / outer;
  };
  std::printf("\nDMA-flood-phase / quiet-phase ratio of the SAME code:\n");
  std::printf("  misses per cycle:        %.2f  (dips: misleading)\n",
              phase_ratio(b_mpc));
  std::printf("  misses per instruction:  %.2f  (flat: the truth)\n",
              phase_ratio(b_mpi));

  telemetry.add_extra("phase_ratio_per_cycle", phase_ratio(b_mpc));
  telemetry.add_extra("phase_ratio_per_instr", phase_ratio(b_mpi));
  telemetry.finish();
  return 0;
}
