// Microbenchmarks of the infrastructure itself (google-benchmark):
// simulator throughput, trace codec throughput, assembler, cache model.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "cache/cache.hpp"
#include "common/prng.hpp"
#include "isa/assembler.hpp"
#include "mcds/trace.hpp"
#include "profiling/session.hpp"
#include "workload/engine.hpp"
#include "workload/kernels.hpp"

namespace {

using namespace audo;

void BM_SocSimulation(benchmark::State& state) {
  workload::EngineOptions opt;
  opt.crank_time_scale = 80;
  auto w = workload::build_engine_workload(opt);
  if (!w.is_ok()) {
    state.SkipWithError("engine build failed");
    return;
  }
  soc::Soc soc{soc::SocConfig{}};
  (void)workload::install_engine(soc, w.value());
  for (auto _ : state) {
    soc.step();
    benchmark::DoNotOptimize(soc.cycle());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
  state.SetLabel("simulated cycles/sec = items/sec");
}
BENCHMARK(BM_SocSimulation);

void BM_SocSimulationWithMcds(benchmark::State& state) {
  workload::EngineOptions opt;
  opt.crank_time_scale = 80;
  auto w = workload::build_engine_workload(opt);
  if (!w.is_ok()) {
    state.SkipWithError("engine build failed");
    return;
  }
  profiling::SessionOptions so;
  so.resolution = 1000;
  so.program_trace = true;
  profiling::ProfilingSession session(soc::SocConfig{}, so);
  (void)session.load(w.value().program);
  workload::configure_engine(session.device().soc(), w.value().options);
  session.reset(w.value().tc_entry, w.value().pcp_entry);
  for (auto _ : state) {
    session.device().step();
    benchmark::DoNotOptimize(session.device().soc().cycle());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_SocSimulationWithMcds);

// The fetch/decode hot path with the predecoded-program cache (the
// default since the cache was introduced) vs the seed behaviour of
// calling isa::decode on every fetched word. Same engine workload, so
// the delta is exactly what the cache buys a single run.
void BM_SocSimulationDecodeCache(benchmark::State& state) {
  workload::EngineOptions opt;
  opt.crank_time_scale = 80;
  auto w = workload::build_engine_workload(opt);
  if (!w.is_ok()) {
    state.SkipWithError("engine build failed");
    return;
  }
  soc::Soc soc{soc::SocConfig{}};
  soc.set_decode_cache_enabled(state.range(0) != 0);
  (void)workload::install_engine(soc, w.value());
  for (auto _ : state) {
    soc.step();
    benchmark::DoNotOptimize(soc.cycle());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
  state.SetLabel(state.range(0) != 0 ? "predecoded lookup"
                                     : "isa::decode per fetched word");
}
BENCHMARK(BM_SocSimulationDecodeCache)->Arg(1)->Arg(0);

// The quiescence fast-forward on its natural prey: an event-driven
// engine build whose background parks in WFI, so nearly every cycle is
// skipped O(1) instead of stepped. items/sec here is *simulated*
// cycles/sec and should dwarf BM_SocSimulation.
void BM_SocIdleFastForward(benchmark::State& state) {
  workload::EngineOptions opt;
  opt.crank_time_scale = 50;
  opt.idle_background = true;
  auto w = workload::build_engine_workload(opt);
  if (!w.is_ok()) {
    state.SkipWithError("engine build failed");
    return;
  }
  soc::Soc soc{soc::SocConfig{}};  // fast_forward defaults on
  (void)workload::install_engine(soc, w.value());
  constexpr u64 kChunk = 100'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(soc.run(kChunk));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(kChunk));
  state.SetLabel("simulated cycles/sec = items/sec");
}
BENCHMARK(BM_SocIdleFastForward);

// The other side of that bargain: a dense compute loop that never goes
// quiescent, run through Soc::run with fast-forward on (the default).
// The per-cycle quiescence probe is the only thing the feature adds to
// this path, so this number must stay within noise of the seed.
void BM_SocDenseKernelNoRegression(benchmark::State& state) {
  auto program = isa::assemble(R"(
    .text 0xC8000000
main:
    movd d0, 0
    movd d1, 1
loop:
    add  d0, d0, d1
    shli d2, d0, 3
    xor  d3, d2, d0
    or   d1, d3, d1
    j    loop
)");
  if (!program.is_ok()) {
    state.SkipWithError("assembly failed");
    return;
  }
  soc::Soc soc{soc::SocConfig{}};
  (void)soc.load(program.value());
  soc.reset(program.value().entry());
  constexpr u64 kChunk = 100'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(soc.run(kChunk));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(kChunk));
  state.SetLabel("simulated cycles/sec = items/sec");
}
BENCHMARK(BM_SocDenseKernelNoRegression);

// The superblock fast tier on its target case: straight-line compute
// (matmul) through Soc::run. Arg(1) = superblock tier, Arg(0) = the
// accurate stepper on the identical workload; the ratio is the tier's
// dense-kernel speedup (tracked with a hard floor in
// tools/check_bench_trend.py).
void BM_SocSuperblockDense(benchmark::State& state) {
  auto program = workload::build_matmul(16);
  if (!program.is_ok()) {
    state.SkipWithError("matmul build failed");
    return;
  }
  u64 simulated = 0;
  for (auto _ : state) {
    state.PauseTiming();
    soc::SocConfig config;
    config.exec_tier = state.range(0) != 0
                           ? soc::SocConfig::ExecTier::kSuperblock
                           : soc::SocConfig::ExecTier::kAccurate;
    soc::Soc soc{config};
    (void)soc.load(program.value());
    soc.reset(program.value().entry());
    state.ResumeTiming();
    benchmark::DoNotOptimize(soc.run(20'000'000));
    simulated += soc.cycle();
  }
  state.SetItemsProcessed(static_cast<i64>(simulated));
  state.SetLabel(state.range(0) != 0 ? "superblock tier"
                                     : "accurate stepper");
}
BENCHMARK(BM_SocSuperblockDense)->Arg(1)->Arg(0);

// Worst case for the tier: a hot loop whose every iteration hits a bail
// op (DEBUG is SYS-pipe, so the window closes and the accurate stepper
// replays the cycle). Measures enter/plan/exit overhead when windows
// never get going; must stay within noise of the accurate stepper on
// the same loop (Arg(0)).
void BM_SocSuperblockBailout(benchmark::State& state) {
  auto program = isa::assemble(R"(
    .text 0xC8000000
main:
    movd d0, 0
    movd d1, 1
loop:
    add  d0, d0, d1
    debug
    xor  d3, d0, d1
    j    loop
)");
  if (!program.is_ok()) {
    state.SkipWithError("assembly failed");
    return;
  }
  soc::SocConfig config;
  config.exec_tier = state.range(0) != 0
                         ? soc::SocConfig::ExecTier::kSuperblock
                         : soc::SocConfig::ExecTier::kAccurate;
  soc::Soc soc{config};
  (void)soc.load(program.value());
  soc.reset(program.value().entry());
  constexpr u64 kChunk = 100'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(soc.run(kChunk));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(kChunk));
  state.SetLabel(state.range(0) != 0 ? "superblock tier (bails every loop)"
                                     : "accurate stepper");
}
BENCHMARK(BM_SocSuperblockBailout)->Arg(1)->Arg(0);

void BM_TraceEncode(benchmark::State& state) {
  mcds::TraceEncoder encoder;
  mcds::TraceMessage sync;
  sync.kind = mcds::MsgKind::kSync;
  sync.source = mcds::MsgSource::kTcCore;
  sync.pc = 0x80001000;
  encoder.encode(sync);
  mcds::TraceMessage rate;
  rate.kind = mcds::MsgKind::kRate;
  rate.source = mcds::MsgSource::kChip;
  rate.group = 2;
  rate.basis = 1000;
  rate.counts = {12, 0, 997, 3, 55};
  Cycle cycle = 0;
  for (auto _ : state) {
    rate.cycle = (cycle += 1000);
    benchmark::DoNotOptimize(encoder.encode(rate));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
  state.SetBytesProcessed(static_cast<i64>(encoder.bytes_encoded()));
}
BENCHMARK(BM_TraceEncode);

void BM_TraceDecode(benchmark::State& state) {
  mcds::TraceEncoder encoder;
  std::vector<mcds::EncodedMessage> units;
  mcds::TraceMessage sync;
  sync.kind = mcds::MsgKind::kSync;
  sync.source = mcds::MsgSource::kTcCore;
  sync.pc = 0x80001000;
  units.push_back(encoder.encode(sync));
  Prng prng(5);
  Addr pc = 0x80001000;
  for (int i = 0; i < 999; ++i) {
    mcds::TraceMessage flow;
    flow.kind = mcds::MsgKind::kFlow;
    flow.source = mcds::MsgSource::kTcCore;
    flow.cycle = static_cast<Cycle>(i * 7);
    pc += static_cast<Addr>(prng.next_range(-64, 64)) * 4;
    flow.pc = pc;
    flow.instr_count = static_cast<u32>(prng.next_below(30));
    units.push_back(encoder.encode(flow));
  }
  for (auto _ : state) {
    auto decoded = mcds::TraceDecoder::decode(units);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 1000);
}
BENCHMARK(BM_TraceDecode);

void BM_Assembler(benchmark::State& state) {
  workload::EngineOptions opt;
  auto w = workload::build_engine_workload(opt);
  if (!w.is_ok()) {
    state.SkipWithError("engine build failed");
    return;
  }
  const std::string source = w.value().source;
  for (auto _ : state) {
    auto program = isa::assemble(source);
    benchmark::DoNotOptimize(program);
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(source.size()));
}
BENCHMARK(BM_Assembler);

void BM_CacheAccess(benchmark::State& state) {
  cache::Cache cache(cache::CacheConfig{
      true, 16 * 1024, static_cast<unsigned>(state.range(0)), 32,
      cache::Replacement::kLru});
  Prng prng(7);
  std::vector<Addr> addrs(4096);
  for (Addr& a : addrs) {
    a = 0x80000000 + static_cast<Addr>(prng.next_below(64 * 1024));
  }
  usize i = 0;
  for (auto _ : state) {
    const Addr a = addrs[i++ & 4095];
    if (!cache.access(a)) cache.fill(a);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): peel off the trisim-shared
// flags (--cycles/--seed/--jobs/--report/--perfetto, plus the valueless
// --no-fast-forward) so a harness can pass one uniform command line to
// every bench binary; everything else goes to google-benchmark unchanged.
int main(int argc, char** argv) {
  std::vector<char*> own_argv{argv[0]};
  std::vector<char*> bm_argv{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--cycles" || a == "--seed" || a == "--jobs" ||
        a == "--report" || a == "--perfetto") {
      own_argv.push_back(argv[i]);
      if (i + 1 < argc) own_argv.push_back(argv[++i]);
    } else if (a == "--no-fast-forward") {
      own_argv.push_back(argv[i]);
    } else {
      bm_argv.push_back(argv[i]);
    }
  }
  const audo::bench::BenchArgs args = audo::bench::parse_args(
      static_cast<int>(own_argv.size()), own_argv.data());
  audo::bench::BenchTelemetry telemetry("bench_micro", args);

  int bm_argc = static_cast<int>(bm_argv.size());
  benchmark::Initialize(&bm_argc, bm_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bm_argc, bm_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // The google-benchmark cases own their fixtures; for --report /
  // --perfetto, observe one plain engine run.
  if (telemetry.enabled()) {
    audo::workload::EngineOptions opt;
    opt.crank_time_scale = 80;
    auto w = audo::workload::build_engine_workload(opt);
    if (w.is_ok()) {
      audo::soc::SocConfig config;
      args.apply(config);
      audo::soc::Soc soc{config};
      (void)audo::workload::install_engine(soc, w.value());
      telemetry.attach(soc);
      telemetry.start();
      soc.run(args.cycles != 0 ? args.cycles : 200'000);
      telemetry.finish();
    }
  }
  return 0;
}
