// E4 — §5/§6: "the reduced tool interface bandwidth requirement of this
// new approach ... the bandwidth of the tool interface does not scale
// with the CPU frequency"; "sustainable for increasing clock frequencies".
//
// Regenerates: tool-interface bandwidth demand for four measurement
// strategies on the same engine run, swept over CPU clock frequency:
//   (a) cycle-accurate program trace       (tick + flow messages),
//   (b) program flow trace                 (flow messages only),
//   (c) external counter polling           (tool reads two 32-bit
//       counters per sample over DAP — the pre-ED approach §5 contrasts),
//   (d) on-chip rate messages              (this paper's method).
// Byte counts for (a), (b), (d) are real encoder output; (c) is the DAP
// transaction cost of polling (8 data bytes + 4 protocol bytes per
// sample-pair, one pair per counter group sample).
#include "bench_common.hpp"

using namespace audo;
using namespace audo::bench;

namespace {

struct Strategy {
  const char* name;
  double bytes;  // per run
};

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  BenchTelemetry telemetry("bench_trace_bandwidth", args);

  header("E4: trace bandwidth vs measurement strategy and CPU clock",
         "rate messages keep tool bandwidth flat where instruction trace "
         "and external polling overrun the interface");

  auto w = default_engine();
  const u64 kCycles = args.cycles != 0 ? args.cycles : 1'000'000;
  constexpr u32 kResolution = 1000;

  auto run_session = [&](bool cycle_accurate, bool program_trace, bool rates,
                         BenchTelemetry* tel = nullptr) {
    profiling::SessionOptions opts;
    opts.standard_rates = rates;
    opts.resolution = kResolution;
    opts.program_trace = program_trace;
    opts.cycle_accurate = cycle_accurate;
    opts.ed.emem.size_bytes = 8 * 1024 * 1024;  // unconstrained for counting
    opts.ed.emem.overlay_bytes = 0;
    profiling::ProfilingSession session(soc::SocConfig{}, opts);
    (void)session.load(w.program);
    workload::configure_engine(session.device().soc(), w.options);
    session.reset(w.tc_entry, w.pcp_entry);
    if (tel != nullptr) {
      tel->attach(session.device());
      tel->start();
    }
    auto result = session.run(kCycles);
    if (tel != nullptr) tel->finish();  // session dies with this scope
    return result;
  };

  const auto full = run_session(true, true, false);
  const auto flow = run_session(false, true, false);
  // Telemetry observes the paper's own strategy (rate messages).
  const auto rates = run_session(false, false, true, &telemetry);

  // External polling: for every rate-message window the tool would issue
  // one debug-port read per counter plus one for the basis counter; a
  // 32-bit read over DAP/JTAG costs ~12 bytes (addressing + handshake +
  // data) — §5: "sampling by the external tool at least two long
  // counters" per parameter vs "a single trace message".
  double polling_bytes = 0;
  for (const auto& m : rates.messages) {
    if (m.kind == mcds::MsgKind::kRate) {
      polling_bytes += (static_cast<double>(m.counts.size()) + 1.0) * 12.0;
    }
  }

  Strategy strategies[] = {
      {"cycle-accurate trace", static_cast<double>(full.trace_bytes)},
      {"program flow trace", static_cast<double>(flow.trace_bytes)},
      {"external counter polling", polling_bytes},
      {"on-chip rate messages", static_cast<double>(rates.trace_bytes)},
  };

  std::printf("\nper-run volume over %llu cycles:\n",
              static_cast<unsigned long long>(kCycles));
  for (const auto& s : strategies) {
    std::printf("  %-26s %12.0f bytes (%7.2f bytes/kcycle)\n", s.name,
                s.bytes, 1000.0 * s.bytes / static_cast<double>(kCycles));
  }

  // Sweep CPU frequency: demand (bytes/s) = bytes/cycle * f.
  const double dap_capacity = 40e6 / 8.0;  // 40 Mbit/s DAP
  std::printf("\nbandwidth demand vs CPU clock (DAP capacity %.1f MB/s):\n",
              dap_capacity / 1e6);
  std::printf("%-26s", "strategy \\ f");
  for (double mhz : {80.0, 180.0, 300.0, 500.0}) std::printf("%12.0fMHz", mhz);
  std::printf("\n");
  for (const auto& s : strategies) {
    std::printf("%-26s", s.name);
    for (double mhz : {80.0, 180.0, 300.0, 500.0}) {
      const double demand =
          s.bytes / static_cast<double>(kCycles) * mhz * 1e6;
      std::printf("%10.2fMB%s", demand / 1e6,
                  demand <= dap_capacity ? " +" : " !");
    }
    std::printf("\n");
  }
  std::printf("('+' fits the tool interface, '!' overruns it)\n");

  std::printf("\nreduction factors at any clock: rate messages are %.0fx "
              "smaller than cycle-accurate trace, %.1fx smaller than "
              "external polling\n",
              static_cast<double>(full.trace_bytes) /
                  static_cast<double>(rates.trace_bytes),
              polling_bytes / static_cast<double>(rates.trace_bytes));
  return 0;
}
