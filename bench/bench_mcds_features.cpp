// E8 — §3: (a) "accurate tracing of concurrency-related bugs, including
// shared variable-access problems" with cycle-level multi-core ordering;
// (b) "possible to trigger on events not happening in a defined time
// window".
#include "bench_common.hpp"

#include "ed/emulation_device.hpp"

using namespace audo;
using namespace audo::bench;

static void shared_variable_demo() {
  std::printf("\n-- (a) cycle-ordered multi-core shared-variable trace --\n");
  // The PCP-offloaded engine: the PCP's ADC handler writes filt_adc in
  // the TC's DSPR; the TC's tooth ISR reads it. Trace only that variable.
  workload::EngineOptions opt;
  opt.rpm = 4500;
  opt.crank_time_scale = 80;
  opt.pcp_offload = true;
  auto w = workload::build_engine_workload(opt);
  if (!w.is_ok()) return;
  const Addr filt = w.value().program.symbol_addr("filt_adc").value();

  mcds::McdsConfig cfg;
  cfg.data_trace = true;
  cfg.trace_pcp = true;
  cfg.sync_interval_cycles = 2048;
  cfg.comparators = {
      mcds::Comparator{mcds::CoreSel::kTc, mcds::CompareField::kDataAddr,
                       filt, filt + 3, -1},
      mcds::Comparator{mcds::CoreSel::kPcp, mcds::CompareField::kDataAddr,
                       filt, filt + 3, -1}};
  cfg.data_qualifier = 0;
  cfg.data_qualifier_pcp = 1;

  ed::EdConfig ed_cfg;
  ed_cfg.emem.size_bytes = 1024 * 1024;
  ed_cfg.emem.overlay_bytes = 0;
  ed::EmulationDevice ed(soc::SocConfig{}, cfg, ed_cfg);
  (void)ed.load(w.value().program);
  workload::configure_engine(ed.soc(), w.value().options);
  ed.reset(w.value().tc_entry, w.value().pcp_entry);
  ed.run(400'000);

  auto decoded = ed.download_trace();
  if (!decoded.is_ok()) return;
  unsigned tc_reads = 0, pcp_writes = 0, shown = 0;
  bool ordered = true;
  Cycle last = 0;
  std::printf("  accesses to shared variable filt_adc@0x%08X:\n", filt);
  for (const auto& m : decoded.value()) {
    if (m.kind != mcds::MsgKind::kData) continue;
    if (m.cycle < last) ordered = false;
    last = m.cycle;
    const bool from_pcp = m.source == mcds::MsgSource::kPcpCore;
    if (from_pcp && m.write) ++pcp_writes;
    if (!from_pcp && !m.write) ++tc_reads;
    if (shown < 10) {
      std::printf("    cycle %8llu  %-3s %-5s value %u\n",
                  static_cast<unsigned long long>(m.cycle),
                  from_pcp ? "PCP" : "TC", m.write ? "WRITE" : "READ",
                  m.value);
      ++shown;
    }
  }
  std::printf("  total: %u TC reads interleaved with %u PCP writes; "
              "cycle order preserved: %s\n",
              tc_reads, pcp_writes, ordered ? "yes" : "NO");
}

static void absence_trigger_demo() {
  std::printf("\n-- (b) trigger on an event NOT happening in a time window --\n");
  workload::EngineOptions opt;
  opt.rpm = 4000;
  opt.crank_time_scale = 80;
  auto w = workload::build_engine_workload(opt);
  if (!w.is_ok()) return;

  constexpr u32 kWindow = 5000;
  mcds::McdsConfig cfg;
  cfg.irq_trace = true;
  cfg.comparators = {mcds::Comparator{
      mcds::CoreSel::kTc, mcds::CompareField::kIrqPrio, opt.prio_tooth,
      opt.prio_tooth, -1}};
  mcds::CounterGroupConfig watch;
  watch.name = "tooth_watch";
  watch.basis = mcds::EventId::kCycles;
  watch.resolution = kWindow;
  mcds::RateCounterConfig counter;
  counter.event = mcds::EventId::kTcIrqEntry;
  counter.threshold = mcds::Threshold{mcds::Threshold::Dir::kBelow, 1};
  counter.qualifier = 0;
  watch.counters = {counter};
  cfg.counter_groups = {watch};
  cfg.actions = {mcds::ActionBinding{mcds::Equation::counter_flag(0),
                                     mcds::TriggerAction::kTriggerOut, 0}};

  ed::EmulationDevice ed(soc::SocConfig{}, cfg, ed::EdConfig{});
  (void)ed.load(w.value().program);
  workload::configure_engine(ed.soc(), w.value().options);
  ed.reset(w.value().tc_entry, w.value().pcp_entry);
  ed.run(250'000);
  std::printf("  healthy engine for 250k cycles: trigger pulses = %llu\n",
              static_cast<unsigned long long>(ed.mcds().trigger_out_pulses()));

  const Cycle failure_at = ed.soc().cycle();
  ed.soc().crank().set_rpm(1);  // sensor failure
  while (ed.mcds().trigger_out_pulses() == 0 &&
         ed.soc().cycle() < failure_at + 100'000) {
    ed.step();
  }
  if (ed.mcds().trigger_out_pulses() > 0) {
    std::printf("  sensor failure injected at cycle %llu; trigger fired at "
                "cycle %llu (detection latency %llu cycles, window %u)\n",
                static_cast<unsigned long long>(failure_at),
                static_cast<unsigned long long>(ed.mcds().last_trigger_out()),
                static_cast<unsigned long long>(ed.mcds().last_trigger_out() -
                                                failure_at),
                kWindow);
  } else {
    std::printf("  ERROR: trigger did not fire\n");
  }
}

static void fsm_preemption_demo() {
  std::printf("\n-- (c) trigger state machine: find a preemption window --\n");
  // Question a developer actually asks: "is the CAN RX handler ever
  // preempted by the ignition (tooth) ISR?" — if yes, the CAN ring is
  // touched from two nesting levels and needs a critical section.
  //   s0 --CAN entry--> s1 --tooth entry--> s2 (violation, latched)
  //                      s1 --irq exit----> s0
  workload::EngineOptions opt;
  opt.rpm = 4500;
  opt.crank_time_scale = 200;   // brisk tooth rate
  opt.can_rx_period = 2'113;    // co-prime with the tooth period (drifting phases)
  auto w = workload::build_engine_workload(opt);
  if (!w.is_ok()) std::abort();

  mcds::McdsConfig cfg;
  cfg.comparators = {
      mcds::Comparator{mcds::CoreSel::kTc, mcds::CompareField::kIrqPrio,
                       opt.prio_can_rx, opt.prio_can_rx, -1},
      mcds::Comparator{mcds::CoreSel::kTc, mcds::CompareField::kIrqPrio,
                       opt.prio_tooth, opt.prio_tooth, -1}};
  cfg.fsm.initial = 0;
  cfg.fsm.transitions = {
      {0, 1, mcds::Equation::comparator(0)},  // CAN handler entered
      {1, 2, mcds::Equation::comparator(1)},  // tooth preempts it
      {1, 0, mcds::Equation::event(mcds::EventId::kTcIrqExit)},
      {2, 2, mcds::Equation::always()},       // latch
  };
  cfg.actions = {
      mcds::ActionBinding{mcds::Equation::state(2),
                          mcds::TriggerAction::kBreak, 0}};
  ed::EmulationDevice ed(soc::SocConfig{}, cfg, ed::EdConfig{});
  (void)ed.load(w.value().program);
  workload::configure_engine(ed.soc(), w.value().options);
  ed.reset(w.value().tc_entry, w.value().pcp_entry);
  ed.run(2'000'000);
  if (ed.mcds().break_requested()) {
    std::printf("  device halted at the first preemption: cycle %llu -> the "
                "shared CAN ring is touched from two nesting levels and "
                "needs a critical section\n",
                static_cast<unsigned long long>(ed.mcds().break_cycle()));
    std::printf("  (interrupted handler: TC next_pc=0x%08X)\n",
                ed.soc().tc().next_pc());
  } else {
    std::printf("  no preemption window in 2M cycles (UNEXPECTED at this "
                "load)\n");
  }
}

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  BenchTelemetry telemetry("bench_mcds_features", args);

  header("E8: MCDS debugging features",
         "cycle-accurate multi-core trace exposes shared-variable "
         "interleavings; counters and state machines trigger on missing "
         "or overrunning events");
  shared_variable_demo();
  absence_trigger_demo();
  fsm_preemption_demo();

  // The demos build their own short-lived devices; for --report /
  // --perfetto, observe one representative engine run with irq trace on.
  if (telemetry.enabled()) {
    auto engine = default_engine();
    mcds::McdsConfig mcds_cfg;
    mcds_cfg.irq_trace = true;
    ed::EmulationDevice ed(soc::SocConfig{}, mcds_cfg, ed::EdConfig{});
    (void)ed.load(engine.program);
    workload::configure_engine(ed.soc(), engine.options);
    ed.reset(engine.tc_entry, engine.pcp_entry);
    telemetry.attach(ed);
    telemetry.start();
    ed.run(args.cycles != 0 ? args.cycles : 500'000);
    telemetry.finish();
  }
  return 0;
}
