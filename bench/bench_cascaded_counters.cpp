// E3 — §5: "the IPC rate measurement with the high resolution, but also
// high trace bandwidth is only activated when the IPC rate with the low
// resolution is below a configurable threshold."
//
// Regenerates: three measurement strategies on the same run —
//   (a) always high-resolution      (full detail, max bandwidth),
//   (b) always low-resolution       (cheap, but can't localize dips),
//   (c) cascaded low->high          (detail only where IPC is bad).
// Reported: trace bytes vs number of high-resolution samples inside the
// low-IPC window. The cascade should capture nearly the same detail as
// (a) inside the window at a fraction of the bytes.
#include "bench_common.hpp"

#include "isa/assembler.hpp"

using namespace audo;
using namespace audo::bench;

namespace {

struct Outcome {
  u64 trace_bytes = 0;
  usize detail_samples = 0;
  usize detail_in_window = 0;  // samples with IPC < 0.6
};

Outcome measure(const isa::Program& program, bool cascade, u32 resolution,
                BenchTelemetry* tel = nullptr) {
  profiling::SessionOptions opts;
  opts.standard_rates = false;
  if (cascade) {
    opts.extra_groups = profiling::cascaded_ipc_groups(
        /*low=*/1000, /*high=*/resolution, /*threshold%=*/60, 0, 0,
        opts.actions);
  } else {
    mcds::CounterGroupConfig g;
    g.name = "ipc_detail";
    g.basis = mcds::EventId::kCycles;
    g.resolution = resolution;
    g.counters = {{mcds::EventId::kTcRetired, {}, {}},
                  {mcds::EventId::kTcICacheMiss, {}, {}},
                  {mcds::EventId::kTcStallIFetch, {}, {}}};
    opts.extra_groups = {g};
  }
  profiling::ProfilingSession session(soc::SocConfig{}, opts);
  (void)session.load(program);
  session.reset(program.entry());
  if (tel != nullptr) {
    tel->attach(session.device());
    tel->start();
  }
  const auto result = session.run(10'000'000);
  if (tel != nullptr) tel->finish();  // session dies with this scope

  Outcome out;
  out.trace_bytes = result.trace_bytes;
  if (const auto* detail = result.find_series("ipc_detail/tc.retired")) {
    out.detail_samples = detail->points.size();
    for (const auto& p : detail->points) {
      if (p.rate() < 0.6) out.detail_in_window++;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  BenchTelemetry telemetry("bench_cascaded_counters", args);

  header("E3: cascaded multi-resolution counters",
         "high-resolution measurement armed only while the low-resolution "
         "guard rate is below a threshold");

  // Long fast phases with short slow (uncached strided flash) bursts.
  std::string src = R"(
    .text 0x80000000
main:
    movha a15, 0xC000
    movd  d7, 8
    mov.ad a8, d7
_episode:
    movd  d0, 4000
    mov.ad a2, d0
_fast:
    addi  d1, d1, 1
    mul   d2, d1, d1
    loop  a2, _fast
    movh  d5, 0xA004
    mov.ad a5, d5
    movd  d0, 800
    mov.ad a2, d0
_slow:
    lea   a5, [a5+36]
    ld.w  d4, [a5+0]
    xor   d1, d1, d4
    loop  a2, _slow
    loop  a8, _episode
    halt
    .data 0x80040000
blob:
    .space 65536
)";
  auto program = isa::assemble(src);
  if (!program.is_ok()) {
    std::printf("asm: %s\n", program.status().to_string().c_str());
    return 1;
  }

  const Outcome high = measure(program.value(), false, 50);
  const Outcome low = measure(program.value(), false, 2000);
  // Telemetry observes the cascaded (paper's) strategy.
  const Outcome casc = measure(program.value(), true, 50, &telemetry);

  std::printf("\n%-28s %12s %16s %18s\n", "strategy", "trace bytes",
              "detail samples", "samples in dips");
  std::printf("%-28s %12llu %16zu %18zu\n", "always high-res (50 cyc)",
              static_cast<unsigned long long>(high.trace_bytes),
              high.detail_samples, high.detail_in_window);
  std::printf("%-28s %12llu %16zu %18zu\n", "always low-res (2000 cyc)",
              static_cast<unsigned long long>(low.trace_bytes),
              low.detail_samples, low.detail_in_window);
  std::printf("%-28s %12llu %16zu %18zu\n", "cascaded low->high",
              static_cast<unsigned long long>(casc.trace_bytes),
              casc.detail_samples, casc.detail_in_window);

  std::printf("\ncascade captures %.0f%% of the in-dip detail at %.1f%% of "
              "the always-high-res bandwidth\n",
              high.detail_in_window == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(casc.detail_in_window) /
                        static_cast<double>(high.detail_in_window),
              high.trace_bytes == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(casc.trace_bytes) /
                        static_cast<double>(high.trace_bytes));
  return 0;
}
