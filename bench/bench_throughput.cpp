// Host-throughput smoke: the numbers behind BENCH_throughput.json.
//
//   1. Single-run simulator speed (simulated cycles per host second) on
//      the engine workload, with the predecoded-program cache on vs off
//      — measured with the existing HostProfiler, telemetry detached.
//   2. A config sweep (the E6-style evaluator over the kernel suite) run
//      serially and with --jobs workers: wall-clock for each plus a
//      bit-identity check that the parallel sweep returned exactly the
//      serial result.
//   3. The idle fast-forward path (SocConfig::fast_forward) on an
//      event-driven engine build that parks in WFI between interrupts:
//      wall-clock with the skip on vs off plus a bit-identity check on
//      the final cycle/instruction counts.
//   4. Warm-forked fault campaign: the same campaign run with every
//      scenario cold-booted vs forked from one snapshot at the last
//      pre-fault quiescent cycle, plus a bit-identity check on the
//      classification hash.
//
// Output is the normal human-readable text plus `THROUGHPUT key=value`
// lines; tools/bench_throughput.py parses those into BENCH_throughput.json
// and applies the (core-count-aware) CI thresholds.
#include <algorithm>
#include <chrono>

#include "bench_common.hpp"

#include "optimize/evaluator.hpp"
#include "optimize/fault_campaign.hpp"
#include "profiling/dag.hpp"

using namespace audo;
using namespace audo::bench;

namespace {

optimize::ArchitectureEvaluator make_sweep_evaluator(unsigned jobs) {
  optimize::ArchitectureEvaluator evaluator{soc::SocConfig{}};
  evaluator.set_jobs(jobs);
  for (const auto& spec : workload::standard_suite()) {
    auto program = spec.build();
    if (!program.is_ok()) continue;
    optimize::WorkloadCase wc;
    wc.name = spec.name;
    wc.program = std::move(program).value();
    wc.tc_entry = wc.program.entry();
    evaluator.add_case(std::move(wc));
  }
  return evaluator;
}

u64 runs_checksum(const std::vector<optimize::OptionResult>& results) {
  // Order-sensitive digest over (option rank, per-case cycles/instructions)
  // — equal checksums on the serial and parallel sweep mean bit-identical
  // CaseRun vectors *and* ranking order.
  u64 h = kFnvOffset;
  for (const auto& r : results) {
    h = fnv1a(h, r.option);
    for (const auto& run : r.runs) {
      h = fnv1a(h, run.cycles);
      h = fnv1a(h, run.instructions);
      h = fnv1a(h, run.halted ? 1 : 0);
    }
  }
  return h;
}

double time_evaluate(optimize::ArchitectureEvaluator& evaluator,
                     const std::vector<optimize::ArchOption>& catalogue,
                     u64* checksum) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = evaluator.evaluate(catalogue);
  const auto t1 = std::chrono::steady_clock::now();
  *checksum = runs_checksum(results);
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  BenchTelemetry telemetry("bench_throughput", args);

  header("Host throughput", "simulator speed: single-run hot path and the "
                            "parallel sweep engine");

  const u64 cycles = args.cycles != 0 ? args.cycles : 2'000'000;

  // --- 1. single-run cycles/sec, decode cache on vs off ---------------
  auto single_run_cps = [&](bool decode_cache) {
    auto w = default_engine();
    soc::SocConfig config;
    args.apply(config);
    soc::Soc soc{config};
    soc.set_decode_cache_enabled(decode_cache);
    if (Status s = workload::install_engine(soc, w); !s.is_ok()) {
      std::fprintf(stderr, "install failed: %s\n", s.to_string().c_str());
      std::exit(1);
    }
    telemetry::HostProfiler host;
    host.start(soc.cycle());
    soc.run(cycles);
    host.stop(soc.cycle());
    return host.sim_cycles_per_second();
  };
  const double cps_on = single_run_cps(true);
  const double cps_off = single_run_cps(false);
  // Same dense run with the execution-DAG frame observer attached: the
  // per-cycle segmentation cost optimization consumers actually pay.
  auto single_run_dag_cps = [&]() {
    auto w = default_engine();
    soc::SocConfig config;
    args.apply(config);
    soc::Soc soc{config};
    profiling::ExecutionDag dag{isa::SymbolMap(w.program)};
    soc.set_frame_observer(&dag);
    if (Status s = workload::install_engine(soc, w); !s.is_ok()) {
      std::fprintf(stderr, "install failed: %s\n", s.to_string().c_str());
      std::exit(1);
    }
    telemetry::HostProfiler host;
    host.start(soc.cycle());
    soc.run(cycles);
    host.stop(soc.cycle());
    return host.sim_cycles_per_second();
  };
  const double cps_dag = single_run_dag_cps();
  std::printf("\nsingle run (%llu cycles, engine workload, telemetry "
              "detached):\n"
              "  decode cache on:  %12.0f sim cycles/sec\n"
              "  decode cache off: %12.0f sim cycles/sec (%.1f%% slower)\n"
              "  + DAG observer:   %12.0f sim cycles/sec (%.1f%% slower)\n",
              static_cast<unsigned long long>(cycles), cps_on, cps_off,
              cps_on > 0.0 ? 100.0 * (cps_on - cps_off) / cps_on : 0.0,
              cps_dag,
              cps_on > 0.0 ? 100.0 * (cps_on - cps_dag) / cps_on : 0.0);

  // --- 2. sweep wall-clock, serial vs --jobs --------------------------
  const auto catalogue = optimize::standard_catalogue();
  u64 serial_sum = 0;
  u64 parallel_sum = 0;
  auto serial_eval = make_sweep_evaluator(1);
  const double serial_s = time_evaluate(serial_eval, catalogue, &serial_sum);
  auto parallel_eval = make_sweep_evaluator(args.jobs);
  const double parallel_s =
      time_evaluate(parallel_eval, catalogue, &parallel_sum);
  const bool identical = serial_sum == parallel_sum;
  std::printf("\nE6-style sweep (%zu options x kernel suite):\n"
              "  serial (1 job):   %8.2f s\n"
              "  parallel (%u jobs): %6.2f s (%.2fx)\n"
              "  results: %s\n",
              catalogue.size(), serial_s, args.jobs, parallel_s,
              parallel_s > 0.0 ? serial_s / parallel_s : 0.0,
              identical ? "bit-identical to serial" : "MISMATCH");

  // --- 3. idle-heavy workload, fast-forward on vs off -----------------
  const u64 ff_cycles = args.cycles != 0 ? args.cycles : 3'000'000;
  struct FfOutcome {
    double seconds = 0.0;
    u64 cycles = 0;
    u64 instructions = 0;
    bool halted = false;
    u64 skipped = 0;
    u64 wakeups = 0;
  };
  auto ff_run = [&](bool fast_forward) {
    workload::EngineOptions opt;
    opt.rpm = 3000;
    opt.crank_time_scale = 50;
    opt.idle_background = true;  // WFI between interrupts (see engine.hpp)
    auto w = workload::build_engine_workload(opt);
    if (!w.is_ok()) {
      std::fprintf(stderr, "engine build failed: %s\n",
                   w.status().to_string().c_str());
      std::exit(1);
    }
    soc::SocConfig config;
    config.fast_forward = fast_forward;
    soc::Soc soc{config};
    if (Status s = workload::install_engine(soc, w.value()); !s.is_ok()) {
      std::fprintf(stderr, "install failed: %s\n", s.to_string().c_str());
      std::exit(1);
    }
    telemetry::HostProfiler host;
    host.start(soc.cycle());
    soc.run(ff_cycles);
    host.stop(soc.cycle());
    FfOutcome out;
    out.seconds = host.wall_seconds();
    out.cycles = soc.cycle();
    out.instructions = soc.tc().retired();
    out.halted = soc.tc().halted();
    out.skipped = soc.ff_stats().skipped_cycles;
    out.wakeups = soc.ff_stats().wakeups;
    return out;
  };
  const FfOutcome ff_on = ff_run(true);
  const FfOutcome ff_off = ff_run(false);
  const bool ff_identical = ff_on.cycles == ff_off.cycles &&
                            ff_on.instructions == ff_off.instructions &&
                            ff_on.halted == ff_off.halted;
  const double ff_speedup =
      ff_on.seconds > 0.0 ? ff_off.seconds / ff_on.seconds : 0.0;
  std::printf("\nidle fast-forward (%llu cycles, event-driven engine, "
              "%.0f%% skipped):\n"
              "  fast-forward on:  %8.3f s\n"
              "  fast-forward off: %8.3f s (%.1fx)\n"
              "  results: %s\n",
              static_cast<unsigned long long>(ff_cycles),
              ff_on.cycles > 0
                  ? 100.0 * static_cast<double>(ff_on.skipped) /
                        static_cast<double>(ff_on.cycles)
                  : 0.0,
              ff_on.seconds, ff_off.seconds, ff_speedup,
              ff_identical ? "bit-identical to stepped" : "MISMATCH");

  // --- 4. fault campaign, cold boots vs warm fork ---------------------
  workload::EngineOptions camp_opt;
  camp_opt.idle_background = true;
  camp_opt.halt_after_revs = 2;
  auto camp_w = workload::build_engine_workload(camp_opt);
  if (!camp_w.is_ok()) {
    std::fprintf(stderr, "engine build failed: %s\n",
                 camp_w.status().to_string().c_str());
    std::exit(1);
  }
  optimize::WorkloadCase camp_case;
  camp_case.name = "engine";
  camp_case.program = camp_w.value().program;
  camp_case.tc_entry = camp_w.value().tc_entry;
  camp_case.pcp_entry = camp_w.value().pcp_entry;
  camp_case.configure = [options = camp_w.value().options](soc::Soc& soc) {
    workload::configure_engine(soc, options);
  };
  camp_case.max_cycles = 400'000;
  optimize::FaultCampaign campaign{soc::SocConfig{}, std::move(camp_case)};
  campaign.set_jobs(1);  // serial, so the timing isolates the boot path
  const auto scenarios = campaign.make_scenarios(/*seed=*/9, /*count=*/16);
  auto time_campaign = [&](u64* hash) {
    const auto t0 = std::chrono::steady_clock::now();
    const optimize::CampaignSummary summary = campaign.run(scenarios);
    const auto t1 = std::chrono::steady_clock::now();
    *hash = summary.classification_hash();
    return std::chrono::duration<double>(t1 - t0).count();
  };
  u64 cold_hash = 0;
  u64 warm_hash = 0;
  const double camp_cold_s = time_campaign(&cold_hash);
  campaign.prepare_warm_fork(scenarios);
  const double camp_warm_s = time_campaign(&warm_hash);
  const bool camp_identical =
      campaign.has_warm_fork() && warm_hash == cold_hash;
  std::printf("\nwarm-forked fault campaign (%zu scenarios + golden, fork "
              "at cycle %llu):\n"
              "  cold boots: %8.3f s\n"
              "  warm fork:  %8.3f s (%.2fx)\n"
              "  results: %s\n",
              scenarios.size(),
              static_cast<unsigned long long>(campaign.warm_fork_cycle()),
              camp_cold_s, camp_warm_s,
              camp_warm_s > 0.0 ? camp_cold_s / camp_warm_s : 0.0,
              camp_identical ? "classification bit-identical to cold"
                             : "MISMATCH");

  // --- 4b. campaign jobs scaling: 1 / 2 / 8 workers -------------------
  //
  // The same warm-forked campaign at three SimPool sizes. The merged
  // classification is job-count independent by construction; the timing
  // gives campaign scenarios/second at each width — the number a fault-
  // campaign user actually waits on.
  const unsigned scaling_jobs[] = {1, 2, 8};
  double scaling_seconds[3] = {0.0, 0.0, 0.0};
  bool scaling_identical = true;
  for (unsigned i = 0; i < 3; ++i) {
    campaign.set_jobs(scaling_jobs[i]);
    u64 hash = 0;
    scaling_seconds[i] = time_campaign(&hash);
    scaling_identical = scaling_identical && hash == cold_hash;
  }
  campaign.set_jobs(1);
  const double best_seconds =
      std::min({scaling_seconds[0], scaling_seconds[1], scaling_seconds[2]});
  const double scenarios_per_sec =
      best_seconds > 0.0
          ? static_cast<double>(scenarios.size() + 1) / best_seconds
          : 0.0;
  std::printf("\ncampaign jobs scaling (%zu scenarios + golden, warm fork):\n",
              scenarios.size());
  for (unsigned i = 0; i < 3; ++i) {
    std::printf("  %u jobs: %8.3f s (%.2fx)\n", scaling_jobs[i],
                scaling_seconds[i],
                scaling_seconds[i] > 0.0
                    ? scaling_seconds[0] / scaling_seconds[i]
                    : 0.0);
  }
  std::printf("  best: %.1f scenarios/s, classifications %s\n",
              scenarios_per_sec,
              scaling_identical ? "bit-identical at every width"
                                : "MISMATCH");

  // --- 5. dense kernels, superblock tier vs accurate stepper ----------
  //
  // The fast tier's target case: straight-line compute with scratchpad /
  // cache-hit memory traffic. Both tiers run each kernel to halt on a
  // fresh SoC; identity is checked on cycles, instructions and the
  // kernel's architectural result word.
  struct TierOutcome {
    double seconds = 0.0;
    u64 cycles = 0;
    u64 instructions = 0;
    u32 result = 0;
    bool halted = false;
  };
  struct DenseKernel {
    const char* name;
    Result<isa::Program> (*build)();
  };
  const DenseKernel dense_kernels[] = {
      {"matmul", [] { return workload::build_matmul(16); }},
      {"fir", [] { return workload::build_fir(24, 512); }},
  };
  const unsigned dense_reps = 6;
  auto tier_run = [&](const DenseKernel& k, soc::SocConfig::ExecTier tier) {
    auto program = k.build();
    if (!program.is_ok()) {
      std::fprintf(stderr, "kernel %s build failed: %s\n", k.name,
                   program.status().to_string().c_str());
      std::exit(1);
    }
    const auto result_sym = program.value().symbol_addr("result");
    const Addr result_addr = result_sym.is_ok() ? result_sym.value() : 0;
    TierOutcome out;
    for (unsigned rep = 0; rep < dense_reps; ++rep) {
      soc::SocConfig config;
      args.apply(config);
      config.exec_tier = tier;
      soc::Soc soc{config};
      if (Status s = soc.load(program.value()); !s.is_ok()) {
        std::fprintf(stderr, "load failed: %s\n", s.to_string().c_str());
        std::exit(1);
      }
      soc.reset(program.value().entry());
      const auto t0 = std::chrono::steady_clock::now();
      soc.run(20'000'000);
      const auto t1 = std::chrono::steady_clock::now();
      out.seconds += std::chrono::duration<double>(t1 - t0).count();
      out.cycles += soc.cycle();
      out.instructions += soc.tc().retired();
      out.result ^= soc.dspr().read(result_addr, 4);
      out.halted = soc.tc().halted();
    }
    return out;
  };
  std::printf("\ndense kernels (%u reps each, run to halt):\n", dense_reps);
  double dense_accurate_ns = 0.0;
  double dense_superblock_ns = 0.0;
  u64 dense_cycles = 0;
  bool dense_identical = true;
  for (const DenseKernel& k : dense_kernels) {
    const TierOutcome acc = tier_run(k, soc::SocConfig::ExecTier::kAccurate);
    const TierOutcome fast =
        tier_run(k, soc::SocConfig::ExecTier::kSuperblock);
    const bool same = acc.cycles == fast.cycles &&
                      acc.instructions == fast.instructions &&
                      acc.result == fast.result && acc.halted && fast.halted;
    dense_identical = dense_identical && same;
    dense_accurate_ns += 1e9 * acc.seconds;
    dense_superblock_ns += 1e9 * fast.seconds;
    dense_cycles += acc.cycles;
    std::printf("  %-8s %9llu cycles  accurate %6.1f ns/cyc  superblock "
                "%5.1f ns/cyc  (%.2fx)  %s\n",
                k.name, static_cast<unsigned long long>(acc.cycles / dense_reps),
                acc.cycles > 0 ? 1e9 * acc.seconds / static_cast<double>(acc.cycles) : 0.0,
                fast.cycles > 0 ? 1e9 * fast.seconds / static_cast<double>(fast.cycles) : 0.0,
                fast.seconds > 0.0 ? acc.seconds / fast.seconds : 0.0,
                same ? "identical" : "MISMATCH");
  }
  dense_accurate_ns /= static_cast<double>(dense_cycles);
  dense_superblock_ns /= static_cast<double>(dense_cycles);
  const double dense_speedup =
      dense_superblock_ns > 0.0 ? dense_accurate_ns / dense_superblock_ns : 0.0;
  std::printf("  overall: accurate %.2f ns/cyc, superblock %.2f ns/cyc "
              "(%.2fx), results %s\n",
              dense_accurate_ns, dense_superblock_ns, dense_speedup,
              dense_identical ? "bit-identical" : "MISMATCH");

  // Machine-readable tail for tools/bench_throughput.py.
  std::printf("\nTHROUGHPUT single_run_cycles=%llu\n",
              static_cast<unsigned long long>(cycles));
  std::printf("THROUGHPUT single_run_cache_on_cps=%.0f\n", cps_on);
  std::printf("THROUGHPUT single_run_cache_off_cps=%.0f\n", cps_off);
  std::printf("THROUGHPUT single_run_dag_cps=%.0f\n", cps_dag);
  std::printf("THROUGHPUT sweep_serial_seconds=%.4f\n", serial_s);
  std::printf("THROUGHPUT sweep_parallel_seconds=%.4f\n", parallel_s);
  std::printf("THROUGHPUT sweep_jobs=%u\n", args.jobs);
  std::printf("THROUGHPUT hardware_jobs=%u\n",
              host::SimPool::hardware_jobs());
  std::printf("THROUGHPUT sweep_identical=%d\n", identical ? 1 : 0);
  std::printf("THROUGHPUT ff_cycles=%llu\n",
              static_cast<unsigned long long>(ff_cycles));
  std::printf("THROUGHPUT ff_on_seconds=%.4f\n", ff_on.seconds);
  std::printf("THROUGHPUT ff_off_seconds=%.4f\n", ff_off.seconds);
  std::printf("THROUGHPUT ff_skipped_cycles=%llu\n",
              static_cast<unsigned long long>(ff_on.skipped));
  std::printf("THROUGHPUT ff_wakeups=%llu\n",
              static_cast<unsigned long long>(ff_on.wakeups));
  std::printf("THROUGHPUT ff_identical=%d\n", ff_identical ? 1 : 0);
  std::printf("THROUGHPUT warm_fork_runs=%zu\n", scenarios.size() + 1);
  std::printf("THROUGHPUT warm_fork_cycle=%llu\n",
              static_cast<unsigned long long>(campaign.warm_fork_cycle()));
  std::printf("THROUGHPUT warm_fork_cold_seconds=%.4f\n", camp_cold_s);
  std::printf("THROUGHPUT warm_fork_warm_seconds=%.4f\n", camp_warm_s);
  std::printf("THROUGHPUT warm_fork_identical=%d\n", camp_identical ? 1 : 0);
  std::printf("THROUGHPUT campaign_scenarios=%zu\n", scenarios.size() + 1);
  std::printf("THROUGHPUT campaign_jobs1_seconds=%.4f\n", scaling_seconds[0]);
  std::printf("THROUGHPUT campaign_jobs2_seconds=%.4f\n", scaling_seconds[1]);
  std::printf("THROUGHPUT campaign_jobs8_seconds=%.4f\n", scaling_seconds[2]);
  std::printf("THROUGHPUT campaign_jobs_identical=%d\n",
              scaling_identical ? 1 : 0);
  std::printf("THROUGHPUT campaign_scenarios_per_sec=%.2f\n",
              scenarios_per_sec);
  std::printf("THROUGHPUT dense_cycles=%llu\n",
              static_cast<unsigned long long>(dense_cycles));
  std::printf("THROUGHPUT dense_accurate_ns_per_cycle=%.3f\n",
              dense_accurate_ns);
  std::printf("THROUGHPUT dense_superblock_ns_per_cycle=%.3f\n",
              dense_superblock_ns);
  std::printf("THROUGHPUT dense_speedup=%.3f\n", dense_speedup);
  std::printf("THROUGHPUT dense_identical=%d\n", dense_identical ? 1 : 0);

  // Optional RunReport on one representative engine run.
  if (telemetry.enabled()) {
    auto w = default_engine();
    soc::SocConfig config;
    args.apply(config);
    soc::Soc soc{config};
    (void)workload::install_engine(soc, w);
    telemetry.attach(soc);
    telemetry.start();
    soc.run(200'000);
    telemetry.add_extra("single_run_cache_on_cps", cps_on);
    telemetry.add_extra("single_run_cache_off_cps", cps_off);
    telemetry.add_extra("single_run_dag_cps", cps_dag);
    telemetry.add_extra("sweep_speedup",
                        parallel_s > 0.0 ? serial_s / parallel_s : 0.0);
    telemetry.add_extra("ff_speedup", ff_speedup);
    telemetry.add_extra("dense_speedup", dense_speedup);
    telemetry.add_extra("warm_fork_speedup",
                        camp_warm_s > 0.0 ? camp_cold_s / camp_warm_s : 0.0);
    telemetry.add_extra("campaign_scenarios_per_sec", scenarios_per_sec);
    telemetry.finish();
  }
  return identical && ff_identical && camp_identical && scaling_identical &&
                 dense_identical
             ? 0
             : 1;
}
