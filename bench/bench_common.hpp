// Shared helpers for the experiment benches (E1..E10 in DESIGN.md):
// the common CLI (--cycles/--seed/--report/--perfetto), the engine
// workload builders, and the host-telemetry harness every bench can
// attach to its measured run.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "ed/emulation_device.hpp"
#include "host/sim_pool.hpp"
#include "profiling/session.hpp"
#include "soc/tracer.hpp"
#include "telemetry/host_profiler.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/run_report.hpp"
#include "workload/engine.hpp"
#include "workload/kernels.hpp"

namespace audo::bench {

// ---- shared CLI -----------------------------------------------------

struct BenchArgs {
  u64 cycles = 0;  // 0 = keep the bench's built-in default
  u64 seed = 0;
  /// Host workers for config sweeps; defaults to hardware concurrency.
  /// Any value produces bit-identical results (see host/sim_pool.hpp).
  unsigned jobs = host::SimPool::hardware_jobs();
  /// --no-fast-forward: step every idle cycle instead of skipping
  /// quiescent stretches. Bit-identical either way (the flag exists for
  /// cross-checking exactly that); apply via `args.apply(config)`.
  bool fast_forward = true;
  /// --exec-tier accurate|superblock: execution engine selection. Like
  /// fast_forward, bit-identical either way (the flag exists for
  /// cross-checking exactly that); apply via `args.apply(config)`.
  soc::SocConfig::ExecTier exec_tier = soc::SocConfig{}.exec_tier;
  std::string report_path;    // --report <path>: RunReport JSON
  std::string perfetto_path;  // --perfetto <path>: Chrome trace JSON

  /// Copy the host-side knobs this CLI controls into a SoC config.
  void apply(soc::SocConfig& config) const {
    config.fast_forward = fast_forward;
    config.exec_tier = exec_tier;
  }

  bool telemetry_requested() const {
    return !report_path.empty() || !perfetto_path.empty();
  }
};

inline void print_usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--cycles N] [--seed N] [--jobs N] "
               "[--no-fast-forward] [--report PATH] [--perfetto PATH]\n"
               "  --cycles N       override the bench's simulated-cycle "
               "budget\n"
               "  --seed N         workload seed (recorded in the report)\n"
               "  --jobs N         host threads for config sweeps "
               "(default: hardware concurrency; results are identical "
               "for any N)\n"
               "  --no-fast-forward  step every idle cycle instead of "
               "skipping quiescent stretches (bit-identical, slower)\n"
               "  --exec-tier T    execution engine: 'superblock' "
               "(default) or 'accurate' (bit-identical, slower)\n"
               "  --report PATH    write a structured RunReport JSON\n"
               "  --perfetto PATH  write a Chrome/Perfetto trace JSON\n",
               argv0);
}

/// Parse the shared flags; exits on --help or an unknown/malformed flag.
inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  auto value_of = [&](int& i, std::string_view flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%.*s needs a value\n",
                   static_cast<int>(flag.size()), flag.data());
      print_usage(argv[0]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--cycles") {
      args.cycles = std::strtoull(value_of(i, a), nullptr, 0);
    } else if (a == "--seed") {
      args.seed = std::strtoull(value_of(i, a), nullptr, 0);
    } else if (a == "--jobs") {
      args.jobs = static_cast<unsigned>(
          std::strtoul(value_of(i, a), nullptr, 0));
      if (args.jobs == 0) args.jobs = host::SimPool::hardware_jobs();
    } else if (a == "--no-fast-forward") {
      args.fast_forward = false;
    } else if (a == "--exec-tier") {
      const std::string_view tier = value_of(i, a);
      if (tier == "accurate") {
        args.exec_tier = soc::SocConfig::ExecTier::kAccurate;
      } else if (tier == "superblock") {
        args.exec_tier = soc::SocConfig::ExecTier::kSuperblock;
      } else {
        std::fprintf(stderr, "--exec-tier wants 'accurate' or 'superblock'\n");
        print_usage(argv[0]);
        std::exit(2);
      }
    } else if (a == "--report") {
      args.report_path = value_of(i, a);
    } else if (a == "--perfetto") {
      args.perfetto_path = value_of(i, a);
    } else if (a == "--help" || a == "-h") {
      print_usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      print_usage(argv[0]);
      std::exit(2);
    }
  }
  return args;
}

// ---- telemetry harness ----------------------------------------------

/// Owns the registry + tracer + host profiler for one measured run and
/// writes the --report/--perfetto artifacts at the end. When neither
/// flag was given, attach()/start()/finish() are no-ops and the run is
/// bit-identical to an unattached one.
class BenchTelemetry {
 public:
  BenchTelemetry(std::string bench_name, BenchArgs args)
      : bench_(std::move(bench_name)), args_(std::move(args)) {}

  bool enabled() const { return args_.telemetry_requested(); }
  const BenchArgs& args() const { return args_; }

  /// Attach to the SoC that will do the measured run (register every
  /// component's metrics; install tracer and phase probe). Call before
  /// the run; the SoC must outlive this object.
  void attach(soc::Soc& soc) {
    if (!enabled()) return;
    soc_ = &soc;
    soc.register_metrics(registry_);
    if (!args_.perfetto_path.empty()) {
      soc.set_tracer(&tracer_);
    }
    soc.set_phase_probe(&profiler_.probe());
  }

  /// ED flavour: product chip plus the EEC side ("mcds", "emem", "dap").
  void attach(ed::EmulationDevice& ed) {
    if (!enabled()) return;
    soc_ = &ed.soc();
    ed.register_metrics(registry_);
    if (!args_.perfetto_path.empty()) {
      ed.set_tracer(&tracer_);
    }
    ed.set_phase_probe(&profiler_.probe());
  }

  /// Bracket the measured run (host wall-clock window).
  void start() {
    if (soc_ != nullptr) profiler_.start(soc_->cycle());
  }
  void stop() {
    if (soc_ != nullptr && !profiler_.stopped()) profiler_.stop(soc_->cycle());
  }

  /// Bench-specific headline numbers for the report's `extras` section.
  void add_extra(std::string name, double value) {
    if (enabled()) report_.add_extra(std::move(name), value);
  }

  /// Stop (if still running), then write the requested artifacts.
  void finish() {
    if (soc_ == nullptr) return;
    stop();
    const Cycle end = soc_->cycle();
    if (!args_.perfetto_path.empty()) {
      tracer_.finish(end);
      if (Status s = tracer_.write_chrome_json(args_.perfetto_path,
                                               soc_->config().clock_hz);
          s.is_ok()) {
        std::printf("perfetto trace: %s (%zu events, %zu tracks)\n",
                    args_.perfetto_path.c_str(), tracer_.timeline().event_count(),
                    tracer_.timeline().track_count());
      } else {
        std::fprintf(stderr, "perfetto write failed: %s\n",
                     s.to_string().c_str());
      }
    }
    if (!args_.report_path.empty()) {
      report_.bench = bench_;
      report_.config_name = soc_->config().name;
      report_.config_fingerprint = soc_->config().fingerprint();
      report_.seed = args_.seed;
      report_.jobs = args_.jobs;
      report_.cycles = end;
      report_.instructions = soc_->tc().retired();
      report_.sim_ipc = end > 0 ? static_cast<double>(report_.instructions) /
                                      static_cast<double>(end)
                                : 0.0;
      report_.metrics = registry_.collect(end);
      report_.set_host(profiler_);
      report_.fast_forward_enabled = soc_->config().fast_forward;
      const soc::FastForwardStats& ff = soc_->ff_stats();
      report_.ff_skipped_cycles = ff.skipped_cycles;
      report_.ff_wakeups = ff.wakeups;
      for (unsigned s = 0; s < soc::kNumWakeSources; ++s) {
        if (ff.wake_counts[s] == 0) continue;
        report_.add_wake_source(soc::to_string(static_cast<soc::WakeSource>(s)),
                                ff.wake_counts[s]);
      }
      if (Status s = report_.write(args_.report_path); s.is_ok()) {
        std::printf("run report: %s (%zu metrics, %zu components, "
                    "%.0f sim cycles/s)\n",
                    args_.report_path.c_str(), report_.metrics.samples.size(),
                    report_.metrics.component_count(),
                    report_.sim_cycles_per_second);
      } else {
        std::fprintf(stderr, "report write failed: %s\n",
                     s.to_string().c_str());
      }
    }
    soc_ = nullptr;  // idempotent: a second finish() is a no-op
  }

 private:
  std::string bench_;
  BenchArgs args_;
  soc::Soc* soc_ = nullptr;
  telemetry::MetricsRegistry registry_;
  soc::SocTracer tracer_;
  telemetry::HostProfiler profiler_;
  telemetry::RunReport report_;
};

inline void header(const char* experiment, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper claim: %s\n", claim);
  std::printf("==============================================================\n");
}

inline workload::EngineWorkload default_engine(u32 halt_after_revs = 0) {
  workload::EngineOptions opt;
  opt.rpm = 4000;
  opt.crank_time_scale = 80;
  opt.table_dim = 64;          // 32 KiB of maps: real D-cache pressure
  opt.diag_words = 256;        // background sweeps a decent flash block
  opt.diag_uncached = true;    // integrity check reads the array itself
  opt.diag_stride_bytes = 36;  // defeats the read buffer (worst case)
  opt.halt_after_revs = halt_after_revs;
  auto w = workload::build_engine_workload(opt);
  if (!w.is_ok()) {
    std::fprintf(stderr, "engine build failed: %s\n",
                 w.status().to_string().c_str());
    std::abort();
  }
  return std::move(w).value();
}

/// Run the engine on a fresh SoC for `cycles`; returns the SoC.
inline std::unique_ptr<soc::Soc> run_engine(const workload::EngineWorkload& w,
                                            const soc::SocConfig& config,
                                            u64 cycles) {
  auto soc = std::make_unique<soc::Soc>(config);
  if (Status s = workload::install_engine(*soc, w); !s.is_ok()) {
    std::fprintf(stderr, "install failed: %s\n", s.to_string().c_str());
    std::abort();
  }
  soc->run(cycles);
  return soc;
}

using profiling::bucketize;

}  // namespace audo::bench
