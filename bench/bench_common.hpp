// Shared helpers for the experiment benches (E1..E10 in DESIGN.md).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "profiling/session.hpp"
#include "workload/engine.hpp"
#include "workload/kernels.hpp"

namespace audo::bench {

inline void header(const char* experiment, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper claim: %s\n", claim);
  std::printf("==============================================================\n");
}

inline workload::EngineWorkload default_engine(u32 halt_after_revs = 0) {
  workload::EngineOptions opt;
  opt.rpm = 4000;
  opt.crank_time_scale = 80;
  opt.table_dim = 64;          // 32 KiB of maps: real D-cache pressure
  opt.diag_words = 256;        // background sweeps a decent flash block
  opt.diag_uncached = true;    // integrity check reads the array itself
  opt.diag_stride_bytes = 36;  // defeats the read buffer (worst case)
  opt.halt_after_revs = halt_after_revs;
  auto w = workload::build_engine_workload(opt);
  if (!w.is_ok()) {
    std::fprintf(stderr, "engine build failed: %s\n",
                 w.status().to_string().c_str());
    std::abort();
  }
  return std::move(w).value();
}

/// Run the engine on a fresh SoC for `cycles`; returns the SoC.
inline std::unique_ptr<soc::Soc> run_engine(const workload::EngineWorkload& w,
                                            const soc::SocConfig& config,
                                            u64 cycles) {
  auto soc = std::make_unique<soc::Soc>(config);
  if (Status s = workload::install_engine(*soc, w); !s.is_ok()) {
    std::fprintf(stderr, "install failed: %s\n", s.to_string().c_str());
    std::abort();
  }
  soc->run(cycles);
  return soc;
}

using profiling::bucketize;

}  // namespace audo::bench
