// Ablations of the design choices DESIGN.md calls out: what each piece
// of the modelled hardware actually buys, measured by removing it.
//
//   A1: flash sequential prefetch on/off           (code-side latency hiding)
//   A2: split code/data flash ports vs shared      (the §4 arbitration story)
//   A3: bus arbitration policy under DMA load      (priority vs fairness)
//   A4: trace-message compression vs naive encoding (the E4 enabler)
//   A5: EMEM capacity vs usable measurement length (why 512 KiB on-chip)
#include "isa/assembler.hpp"

#include "bench_common.hpp"
#include "ed/emulation_device.hpp"
#include "mem/memory_map.hpp"

using namespace audo;
using namespace audo::bench;



int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  BenchTelemetry telemetry("bench_ablation", args);

  header("Ablations", "what each modelled mechanism contributes");

  auto w = default_engine();
  {
    workload::EngineOptions opt = w.options;
    opt.halt_after_bg = 300;
    auto rebuilt = workload::build_engine_workload(opt);
    if (!rebuilt.is_ok()) return 1;
    w = std::move(rebuilt).value();
  }

  // One pool for every multi-config sweep below (A1/A3/A5); each lambda
  // builds its own SoC/ED, so runs are independent and order-identical.
  host::SimPool pool(args.jobs);

  // --- A1: sequential prefetch ---
  // Visible on sequential code fetched straight from the flash (cold
  // cache / non-cacheable code); cached steady-state code hides it.
  {
    std::string src = "    .text 0xA0000000\nmain:\n";
    for (int i = 0; i < 4000; ++i) src += "    addi d0, d0, 1\n";
    src += "    halt\n";
    auto straight = isa::assemble(src);
    if (!straight.is_ok()) return 1;
    auto run_once = [&](bool prefetch) {
      soc::SocConfig cfg;
      cfg.pflash.sequential_prefetch = prefetch;
      soc::Soc soc(cfg);
      (void)soc.load(straight.value());
      soc.reset(straight.value().entry());
      return soc.run(10'000'000);
    };
    const std::vector<u64> cycles =
        pool.map<u64>(2, [&](usize i) { return run_once(i == 0); });
    const u64 c_with = cycles[0];
    const u64 c_without = cycles[1];
    std::printf("\nA1 flash sequential prefetch (straight-line uncached "
                "code): on=%llu cycles, off=%llu (+%.1f%% without)\n",
                static_cast<unsigned long long>(c_with),
                static_cast<unsigned long long>(c_without),
                100.0 * (static_cast<double>(c_without) - static_cast<double>(c_with)) /
                    static_cast<double>(c_with));
  }

  // --- A2: value of the dual-ported flash ---
  // Approximate a shared single port by serializing everything through
  // wait states doubled on the data side (the array is busy with code).
  // Direct measurement: count port-conflict cycles with the real model.
  // Host telemetry rides on this run (the longest single-SoC run here).
  {
    soc::Soc soc{soc::SocConfig{}};
    (void)workload::install_engine(soc, w);
    telemetry.attach(soc);
    telemetry.start();
    soc.run(args.cycles != 0 ? args.cycles : 60'000'000);
    telemetry.finish();  // soc dies with this scope
    const auto& fs = soc.pflash().stats();
    std::printf("A2 code/data port arbitration: %llu array fetches, %llu "
                "conflict wait cycles (%.2f%% of runtime) absorbed by the "
                "dual-port + buffer design\n",
                static_cast<unsigned long long>(fs.array_fetches),
                static_cast<unsigned long long>(fs.port_conflict_cycles),
                100.0 * static_cast<double>(fs.port_conflict_cycles) /
                    static_cast<double>(soc.cycle()));
  }

  // --- A3: arbitration policy when the flash data port oversubscribes ---
  // With one outstanding CPU request the port never saturates from a
  // single master (the engine run is policy-neutral — verified). Three
  // contenders (TC diag + DMA flood + a PCP flash loop) oversubscribe it;
  // fixed priority then starves the lowest master (the PCP).
  {
    auto contended = isa::assemble(R"(
      .text 0x80000000
main:
      movha a15, 0xC000
      movh  d6, 0xA004
      mov.ad a2, d6
_tc_loop:
      ld.w  d1, [a2+0]
      lea   a2, [a2+36]
      xor   d0, d0, d1
      j     _tc_loop
      .text 0xD0000000
pcp_main:
      di
      movha a15, 0xD400
      movh  d6, 0xA006
      mov.ad a2, d6
_pcp_loop:
      ld.w  d1, [a2+0]
      lea   a2, [a2+36]
      xor   d0, d0, d1
      j     _pcp_loop
)");
    if (!contended.is_ok()) return 1;
    auto pcp_progress = [&](bus::ArbitrationPolicy policy) {
      soc::SocConfig cfg;
      cfg.arbitration = policy;
      soc::Soc soc(cfg);
      (void)soc.load(contended.value());
      const Addr tc = contended.value().symbol_addr("main").value();
      const Addr pcp = contended.value().symbol_addr("pcp_main").value();
      soc.reset(tc, pcp);
      periph::DmaController::ChannelConfig flood;
      flood.src = mem::kPFlashUncachedBase + 0x60000;
      flood.dst = mem::kDsprBase + 0xF000;
      flood.count = 0xFFFFFFFF;
      flood.src_step = 64;
      flood.dst_step = 0;
      soc.dma().setup_channel(1, flood, true);
      soc.run(200'000);
      return soc.pcp()->retired();
    };
    const std::vector<u64> progress = pool.map<u64>(2, [&](usize i) {
      return pcp_progress(i == 0 ? bus::ArbitrationPolicy::kFixedPriority
                                 : bus::ArbitrationPolicy::kRoundRobin);
    });
    const u64 fixed = progress[0];
    const u64 rr = progress[1];
    std::printf("A3 arbitration on an oversubscribed flash port (TC + DMA + "
                "PCP): PCP progress fixed-priority=%llu instrs, "
                "round-robin=%llu (%.2fx fairer)\n",
                static_cast<unsigned long long>(fixed),
                static_cast<unsigned long long>(rr),
                fixed == 0 ? 0.0
                           : static_cast<double>(rr) / static_cast<double>(fixed));
  }

  // --- A4: trace compression ---
  {
    profiling::SessionOptions opts;
    opts.resolution = 1000;
    opts.program_trace = true;
    opts.ed.emem.size_bytes = 16 * 1024 * 1024;
    opts.ed.emem.overlay_bytes = 0;
    profiling::ProfilingSession session(soc::SocConfig{}, opts);
    (void)session.load(w.program);
    workload::configure_engine(session.device().soc(), w.options);
    session.reset(w.tc_entry, w.pcp_entry);
    const auto result = session.run(500'000);
    // Naive encoding: every message as fixed fields (kind 1B + ts 8B +
    // pc/addr 4B + value/count payload 4B per element).
    u64 naive = 0;
    for (const auto& m : result.messages) {
      naive += 1 + 8 + 4 + 4 * std::max<usize>(1, m.counts.size());
    }
    std::printf("A4 trace compression: %llu bytes bit-packed vs %llu naive "
                "(%.1fx) over %zu messages\n",
                static_cast<unsigned long long>(result.trace_bytes),
                static_cast<unsigned long long>(naive),
                static_cast<double>(naive) /
                    static_cast<double>(result.trace_bytes),
                result.messages.size());
  }

  // --- A5: EMEM capacity vs measurement length ---
  {
    std::printf("A5 EMEM capacity vs usable fill-mode measurement length "
                "(flow trace + standard rates):\n");
    const std::vector<u32> sizes_kib = {64u, 128u, 256u, 512u};
    const std::vector<u64> capture = pool.map<u64>(
        sizes_kib.size(), [&](usize i) -> u64 {
          mcds::McdsConfig cfg;
          cfg.program_trace = true;
          cfg.counter_groups = profiling::standard_groups(1000);
          ed::EdConfig ed_cfg;
          ed_cfg.emem.size_bytes = sizes_kib[i] * 1024;
          ed_cfg.emem.overlay_bytes = 0;
          ed::EmulationDevice ed(soc::SocConfig{}, cfg, ed_cfg);
          (void)ed.load(w.program);
          workload::configure_engine(ed.soc(), w.options);
          ed.reset(w.tc_entry, w.pcp_entry);
          // Run until the first message is dropped.
          while (ed.mcds().dropped_messages() == 0 &&
                 !ed.soc().tc().halted() && ed.soc().cycle() < 60'000'000) {
            ed.step();
          }
          return ed.soc().cycle();
        });
    for (usize i = 0; i < sizes_kib.size(); ++i) {
      std::printf("  %4u KiB -> %9llu cycles of gap-free capture\n",
                  sizes_kib[i], static_cast<unsigned long long>(capture[i]));
    }
  }
  return 0;
}
