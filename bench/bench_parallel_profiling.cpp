// E1 — §5/Figure 5: "all these parameters can be dynamically and in
// parallel measured, non-intrusively, with a configurable resolution".
//
// Regenerates: the parallel parameter time series of an engine-control
// run (IPC, cache rates, access mix, interrupt rate — all from ONE run),
// plus the non-intrusiveness check (cycle-identical run with the EEC
// disabled) and the single-run-requirement demonstration (two runs of the
// same application under live inputs are NOT identical, so sequential
// single-parameter measurement would correlate different executions).
#include <iterator>

#include "bench_common.hpp"

using namespace audo;
using namespace audo::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  BenchTelemetry telemetry("bench_parallel_profiling", args);

  header("E1: parallel, dynamic, non-intrusive parameter measurement",
         "all essential parameters measured in parallel over the time "
         "line, without disturbing the target");

  auto w = default_engine();
  const u64 kCycles = args.cycles != 0 ? args.cycles : 1'500'000;

  profiling::SessionOptions opts;
  opts.resolution = 1000;
  profiling::ProfilingSession session(soc::SocConfig{}, opts);
  (void)session.load(w.program);
  workload::configure_engine(session.device().soc(), w.options);
  session.reset(w.tc_entry, w.pcp_entry);
  telemetry.attach(session.device());
  // Drive a realistic engine transient: idle -> acceleration -> cruise.
  // (The observed quantity is hard real-time activity following the
  // physical environment — exactly why §5 wants the time axis.)
  constexpr u32 kRpmProfile[] = {900,  1200, 2200, 3500, 5200, 6400,
                                 6000, 5200, 4200, 3600, 3300, 3200};
  profiling::SessionResult result;
  {
    const u64 slice = kCycles / std::size(kRpmProfile);
    telemetry.start();
    for (u32 rpm : kRpmProfile) {
      session.device().soc().crank().set_rpm(rpm);
      session.device().run(slice);
    }
    telemetry.stop();
    result = session.run(0);  // download & decode
  }

  // --- parallel series over the time line ---
  const char* names[] = {
      "ipc/tc.retired",          "cache/tc.icache.miss",
      "cache/tc.dcache.miss",    "access/tc.flash.data_access",
      "access/tc.dspr.access",   "system/tc.irq.entry",
      "system/tc.stalled",
  };
  constexpr usize kBuckets = 12;
  std::printf("\n%-30s", "series \\ time bucket");
  for (usize b = 0; b < kBuckets; ++b) std::printf("%7zu", b);
  std::printf("\n");
  for (const char* name : names) {
    const auto* series = result.find_series(name);
    if (series == nullptr) continue;
    const auto buckets = bucketize(*series, kBuckets);
    std::printf("%-30s", name);
    for (double v : buckets) std::printf("%7.3f", v);
    std::printf("\n");
  }
  std::printf("\nall %zu series from ONE run, %llu rate messages, "
              "%.1f trace bytes/kcycle\n",
              result.series.size(),
              static_cast<unsigned long long>(result.trace_messages),
              result.bytes_per_kcycle);

  // --- non-intrusiveness: same environment, EEC absent ---
  auto run_bare = [&](u32 rpm_scale_percent) {
    auto soc = std::make_unique<soc::Soc>(soc::SocConfig{});
    (void)workload::install_engine(*soc, w);
    const u64 slice = kCycles / std::size(kRpmProfile);
    for (u32 rpm : kRpmProfile) {
      soc->crank().set_rpm(rpm * rpm_scale_percent / 100);
      soc->run(slice);
    }
    return soc;
  };
  auto bare = run_bare(100);
  const u64 observed_retired = session.device().soc().tc().retired();
  std::printf("\nnon-intrusiveness: bare run retired %llu instructions, "
              "observed run retired %llu -> %s\n",
              static_cast<unsigned long long>(bare->tc().retired()),
              static_cast<unsigned long long>(observed_retired),
              bare->tc().retired() == observed_retired ? "IDENTICAL"
                                                       : "DIVERGED");

  // --- why parallel measurement matters: runs are not repeatable ---
  // Perturb the environment slightly (2% engine-speed difference) and
  // show the executions diverge — "it is usually not possible to repeat
  // the same application run under identical conditions" (§5).
  auto other = run_bare(102);
  std::printf("repeatability: a 2%% rpm difference changes retired "
              "instructions by %lld -> sequential per-parameter "
              "measurement would mix different executions\n",
              static_cast<long long>(other->tc().retired()) -
                  static_cast<long long>(bare->tc().retired()));

  telemetry.add_extra("trace_messages",
                      static_cast<double>(result.trace_messages));
  telemetry.add_extra("bytes_per_kcycle", result.bytes_per_kcycle);
  telemetry.add_extra("series_count", static_cast<double>(result.series.size()));
  telemetry.finish();
  return 0;
}
