# Empty compiler generated dependencies file for bench_rate_basis.
# This may be replaced when dependencies are built.
