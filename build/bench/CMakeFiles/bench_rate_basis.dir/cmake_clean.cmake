file(REMOVE_RECURSE
  "CMakeFiles/bench_rate_basis.dir/bench_rate_basis.cpp.o"
  "CMakeFiles/bench_rate_basis.dir/bench_rate_basis.cpp.o.d"
  "bench_rate_basis"
  "bench_rate_basis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rate_basis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
