file(REMOVE_RECURSE
  "CMakeFiles/bench_mcds_features.dir/bench_mcds_features.cpp.o"
  "CMakeFiles/bench_mcds_features.dir/bench_mcds_features.cpp.o.d"
  "bench_mcds_features"
  "bench_mcds_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mcds_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
