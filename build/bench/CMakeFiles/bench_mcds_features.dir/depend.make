# Empty dependencies file for bench_mcds_features.
# This may be replaced when dependencies are built.
