# Empty compiler generated dependencies file for bench_sw_optimization.
# This may be replaced when dependencies are built.
