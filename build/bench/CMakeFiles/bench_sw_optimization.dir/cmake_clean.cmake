file(REMOVE_RECURSE
  "CMakeFiles/bench_sw_optimization.dir/bench_sw_optimization.cpp.o"
  "CMakeFiles/bench_sw_optimization.dir/bench_sw_optimization.cpp.o.d"
  "bench_sw_optimization"
  "bench_sw_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sw_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
