file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_profiling.dir/bench_parallel_profiling.cpp.o"
  "CMakeFiles/bench_parallel_profiling.dir/bench_parallel_profiling.cpp.o.d"
  "bench_parallel_profiling"
  "bench_parallel_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
