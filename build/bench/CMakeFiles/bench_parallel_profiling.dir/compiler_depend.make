# Empty compiler generated dependencies file for bench_parallel_profiling.
# This may be replaced when dependencies are built.
