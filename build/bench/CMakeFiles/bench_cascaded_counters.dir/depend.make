# Empty dependencies file for bench_cascaded_counters.
# This may be replaced when dependencies are built.
