file(REMOVE_RECURSE
  "CMakeFiles/bench_cascaded_counters.dir/bench_cascaded_counters.cpp.o"
  "CMakeFiles/bench_cascaded_counters.dir/bench_cascaded_counters.cpp.o.d"
  "bench_cascaded_counters"
  "bench_cascaded_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cascaded_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
