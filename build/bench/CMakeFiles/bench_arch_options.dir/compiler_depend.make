# Empty compiler generated dependencies file for bench_arch_options.
# This may be replaced when dependencies are built.
