file(REMOVE_RECURSE
  "CMakeFiles/bench_arch_options.dir/bench_arch_options.cpp.o"
  "CMakeFiles/bench_arch_options.dir/bench_arch_options.cpp.o.d"
  "bench_arch_options"
  "bench_arch_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_arch_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
