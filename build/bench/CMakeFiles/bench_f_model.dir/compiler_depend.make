# Empty compiler generated dependencies file for bench_f_model.
# This may be replaced when dependencies are built.
