file(REMOVE_RECURSE
  "CMakeFiles/bench_f_model.dir/bench_f_model.cpp.o"
  "CMakeFiles/bench_f_model.dir/bench_f_model.cpp.o.d"
  "bench_f_model"
  "bench_f_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
