# Empty compiler generated dependencies file for bench_ed_equivalence.
# This may be replaced when dependencies are built.
