file(REMOVE_RECURSE
  "CMakeFiles/bench_ed_equivalence.dir/bench_ed_equivalence.cpp.o"
  "CMakeFiles/bench_ed_equivalence.dir/bench_ed_equivalence.cpp.o.d"
  "bench_ed_equivalence"
  "bench_ed_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ed_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
