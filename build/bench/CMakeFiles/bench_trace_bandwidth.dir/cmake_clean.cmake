file(REMOVE_RECURSE
  "CMakeFiles/bench_trace_bandwidth.dir/bench_trace_bandwidth.cpp.o"
  "CMakeFiles/bench_trace_bandwidth.dir/bench_trace_bandwidth.cpp.o.d"
  "bench_trace_bandwidth"
  "bench_trace_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
