# Empty dependencies file for bench_trace_bandwidth.
# This may be replaced when dependencies are built.
