file(REMOVE_RECURSE
  "CMakeFiles/bench_flash_lever.dir/bench_flash_lever.cpp.o"
  "CMakeFiles/bench_flash_lever.dir/bench_flash_lever.cpp.o.d"
  "bench_flash_lever"
  "bench_flash_lever.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flash_lever.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
