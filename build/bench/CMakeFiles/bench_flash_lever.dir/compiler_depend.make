# Empty compiler generated dependencies file for bench_flash_lever.
# This may be replaced when dependencies are built.
