# Empty dependencies file for test_transmission.
# This may be replaced when dependencies are built.
