file(REMOVE_RECURSE
  "CMakeFiles/test_transmission.dir/test_transmission.cpp.o"
  "CMakeFiles/test_transmission.dir/test_transmission.cpp.o.d"
  "test_transmission"
  "test_transmission.pdb"
  "test_transmission[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transmission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
