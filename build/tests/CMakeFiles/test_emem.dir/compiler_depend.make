# Empty compiler generated dependencies file for test_emem.
# This may be replaced when dependencies are built.
