file(REMOVE_RECURSE
  "CMakeFiles/test_emem.dir/test_emem.cpp.o"
  "CMakeFiles/test_emem.dir/test_emem.cpp.o.d"
  "test_emem"
  "test_emem.pdb"
  "test_emem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
