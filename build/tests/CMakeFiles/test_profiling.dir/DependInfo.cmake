
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_profiling.cpp" "tests/CMakeFiles/test_profiling.dir/test_profiling.cpp.o" "gcc" "tests/CMakeFiles/test_profiling.dir/test_profiling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/audo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/audo_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/audo_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/audo_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/audo_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/audo_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/periph/CMakeFiles/audo_periph.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/audo_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/mcds/CMakeFiles/audo_mcds.dir/DependInfo.cmake"
  "/root/repo/build/src/emem/CMakeFiles/audo_emem.dir/DependInfo.cmake"
  "/root/repo/build/src/ed/CMakeFiles/audo_ed.dir/DependInfo.cmake"
  "/root/repo/build/src/profiling/CMakeFiles/audo_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/optimize/CMakeFiles/audo_optimize.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/audo_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
