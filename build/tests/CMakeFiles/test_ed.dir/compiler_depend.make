# Empty compiler generated dependencies file for test_ed.
# This may be replaced when dependencies are built.
