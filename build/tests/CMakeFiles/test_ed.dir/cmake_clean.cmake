file(REMOVE_RECURSE
  "CMakeFiles/test_ed.dir/test_ed.cpp.o"
  "CMakeFiles/test_ed.dir/test_ed.cpp.o.d"
  "test_ed"
  "test_ed.pdb"
  "test_ed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
