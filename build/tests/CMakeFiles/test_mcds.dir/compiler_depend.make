# Empty compiler generated dependencies file for test_mcds.
# This may be replaced when dependencies are built.
