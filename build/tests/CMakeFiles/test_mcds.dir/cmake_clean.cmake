file(REMOVE_RECURSE
  "CMakeFiles/test_mcds.dir/test_mcds.cpp.o"
  "CMakeFiles/test_mcds.dir/test_mcds.cpp.o.d"
  "test_mcds"
  "test_mcds.pdb"
  "test_mcds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mcds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
