file(REMOVE_RECURSE
  "CMakeFiles/test_timing_golden.dir/test_timing_golden.cpp.o"
  "CMakeFiles/test_timing_golden.dir/test_timing_golden.cpp.o.d"
  "test_timing_golden"
  "test_timing_golden.pdb"
  "test_timing_golden[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timing_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
