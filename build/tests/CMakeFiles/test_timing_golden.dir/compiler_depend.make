# Empty compiler generated dependencies file for test_timing_golden.
# This may be replaced when dependencies are built.
