# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_bus[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_periph[1]_include.cmake")
include("/root/repo/build/tests/test_mcds[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_emem[1]_include.cmake")
include("/root/repo/build/tests/test_soc[1]_include.cmake")
include("/root/repo/build/tests/test_ed[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_profiling[1]_include.cmake")
include("/root/repo/build/tests/test_optimize[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_features[1]_include.cmake")
include("/root/repo/build/tests/test_export[1]_include.cmake")
include("/root/repo/build/tests/test_transmission[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_soak[1]_include.cmake")
include("/root/repo/build/tests/test_timing_golden[1]_include.cmake")
