# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_smoke "/root/repo/build/tools/audo-profile" "/root/repo/examples/demo.s" "--cycles" "100000" "--functions" "--listing" "10" "--series-csv" "/root/repo/build/demo_series.csv")
set_tests_properties(cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
