file(REMOVE_RECURSE
  "CMakeFiles/audo-profile.dir/audo_profile.cpp.o"
  "CMakeFiles/audo-profile.dir/audo_profile.cpp.o.d"
  "audo-profile"
  "audo-profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audo-profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
