# Empty dependencies file for audo-profile.
# This may be replaced when dependencies are built.
