file(REMOVE_RECURSE
  "CMakeFiles/audo_optimize.dir/cost_model.cpp.o"
  "CMakeFiles/audo_optimize.dir/cost_model.cpp.o.d"
  "CMakeFiles/audo_optimize.dir/evaluator.cpp.o"
  "CMakeFiles/audo_optimize.dir/evaluator.cpp.o.d"
  "CMakeFiles/audo_optimize.dir/options.cpp.o"
  "CMakeFiles/audo_optimize.dir/options.cpp.o.d"
  "libaudo_optimize.a"
  "libaudo_optimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audo_optimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
