# Empty dependencies file for audo_optimize.
# This may be replaced when dependencies are built.
