file(REMOVE_RECURSE
  "libaudo_optimize.a"
)
