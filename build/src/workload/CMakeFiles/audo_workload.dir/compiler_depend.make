# Empty compiler generated dependencies file for audo_workload.
# This may be replaced when dependencies are built.
