
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/engine.cpp" "src/workload/CMakeFiles/audo_workload.dir/engine.cpp.o" "gcc" "src/workload/CMakeFiles/audo_workload.dir/engine.cpp.o.d"
  "/root/repo/src/workload/kernels.cpp" "src/workload/CMakeFiles/audo_workload.dir/kernels.cpp.o" "gcc" "src/workload/CMakeFiles/audo_workload.dir/kernels.cpp.o.d"
  "/root/repo/src/workload/transmission.cpp" "src/workload/CMakeFiles/audo_workload.dir/transmission.cpp.o" "gcc" "src/workload/CMakeFiles/audo_workload.dir/transmission.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/audo_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/audo_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/periph/CMakeFiles/audo_periph.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/audo_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/audo_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mcds/CMakeFiles/audo_mcds.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/audo_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/audo_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/audo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
