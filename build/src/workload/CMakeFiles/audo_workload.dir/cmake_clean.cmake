file(REMOVE_RECURSE
  "CMakeFiles/audo_workload.dir/engine.cpp.o"
  "CMakeFiles/audo_workload.dir/engine.cpp.o.d"
  "CMakeFiles/audo_workload.dir/kernels.cpp.o"
  "CMakeFiles/audo_workload.dir/kernels.cpp.o.d"
  "CMakeFiles/audo_workload.dir/transmission.cpp.o"
  "CMakeFiles/audo_workload.dir/transmission.cpp.o.d"
  "libaudo_workload.a"
  "libaudo_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audo_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
