file(REMOVE_RECURSE
  "libaudo_workload.a"
)
