file(REMOVE_RECURSE
  "libaudo_bus.a"
)
