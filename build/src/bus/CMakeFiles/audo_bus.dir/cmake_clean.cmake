file(REMOVE_RECURSE
  "CMakeFiles/audo_bus.dir/crossbar.cpp.o"
  "CMakeFiles/audo_bus.dir/crossbar.cpp.o.d"
  "libaudo_bus.a"
  "libaudo_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audo_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
