# Empty compiler generated dependencies file for audo_bus.
# This may be replaced when dependencies are built.
