file(REMOVE_RECURSE
  "CMakeFiles/audo_periph.dir/dma.cpp.o"
  "CMakeFiles/audo_periph.dir/dma.cpp.o.d"
  "CMakeFiles/audo_periph.dir/irq_router.cpp.o"
  "CMakeFiles/audo_periph.dir/irq_router.cpp.o.d"
  "CMakeFiles/audo_periph.dir/peripherals.cpp.o"
  "CMakeFiles/audo_periph.dir/peripherals.cpp.o.d"
  "libaudo_periph.a"
  "libaudo_periph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audo_periph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
