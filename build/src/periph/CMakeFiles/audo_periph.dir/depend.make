# Empty dependencies file for audo_periph.
# This may be replaced when dependencies are built.
