
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/periph/dma.cpp" "src/periph/CMakeFiles/audo_periph.dir/dma.cpp.o" "gcc" "src/periph/CMakeFiles/audo_periph.dir/dma.cpp.o.d"
  "/root/repo/src/periph/irq_router.cpp" "src/periph/CMakeFiles/audo_periph.dir/irq_router.cpp.o" "gcc" "src/periph/CMakeFiles/audo_periph.dir/irq_router.cpp.o.d"
  "/root/repo/src/periph/peripherals.cpp" "src/periph/CMakeFiles/audo_periph.dir/peripherals.cpp.o" "gcc" "src/periph/CMakeFiles/audo_periph.dir/peripherals.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/audo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/audo_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/audo_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mcds/CMakeFiles/audo_mcds.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/audo_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/audo_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/audo_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
