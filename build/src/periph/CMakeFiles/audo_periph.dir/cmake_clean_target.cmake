file(REMOVE_RECURSE
  "libaudo_periph.a"
)
