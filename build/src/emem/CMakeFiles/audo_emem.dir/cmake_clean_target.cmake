file(REMOVE_RECURSE
  "libaudo_emem.a"
)
