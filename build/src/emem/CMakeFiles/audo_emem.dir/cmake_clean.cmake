file(REMOVE_RECURSE
  "CMakeFiles/audo_emem.dir/emem.cpp.o"
  "CMakeFiles/audo_emem.dir/emem.cpp.o.d"
  "libaudo_emem.a"
  "libaudo_emem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audo_emem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
