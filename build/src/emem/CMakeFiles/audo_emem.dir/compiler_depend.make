# Empty compiler generated dependencies file for audo_emem.
# This may be replaced when dependencies are built.
