
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/emem/emem.cpp" "src/emem/CMakeFiles/audo_emem.dir/emem.cpp.o" "gcc" "src/emem/CMakeFiles/audo_emem.dir/emem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/audo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mcds/CMakeFiles/audo_mcds.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/audo_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/audo_bus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
