# Empty compiler generated dependencies file for audo_profiling.
# This may be replaced when dependencies are built.
