file(REMOVE_RECURSE
  "CMakeFiles/audo_profiling.dir/export.cpp.o"
  "CMakeFiles/audo_profiling.dir/export.cpp.o.d"
  "CMakeFiles/audo_profiling.dir/function_profile.cpp.o"
  "CMakeFiles/audo_profiling.dir/function_profile.cpp.o.d"
  "CMakeFiles/audo_profiling.dir/listing.cpp.o"
  "CMakeFiles/audo_profiling.dir/listing.cpp.o.d"
  "CMakeFiles/audo_profiling.dir/session.cpp.o"
  "CMakeFiles/audo_profiling.dir/session.cpp.o.d"
  "CMakeFiles/audo_profiling.dir/spec.cpp.o"
  "CMakeFiles/audo_profiling.dir/spec.cpp.o.d"
  "CMakeFiles/audo_profiling.dir/timeseries.cpp.o"
  "CMakeFiles/audo_profiling.dir/timeseries.cpp.o.d"
  "libaudo_profiling.a"
  "libaudo_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audo_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
