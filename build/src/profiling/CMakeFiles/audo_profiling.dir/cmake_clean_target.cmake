file(REMOVE_RECURSE
  "libaudo_profiling.a"
)
