# Empty compiler generated dependencies file for audo_cpu.
# This may be replaced when dependencies are built.
