file(REMOVE_RECURSE
  "libaudo_cpu.a"
)
