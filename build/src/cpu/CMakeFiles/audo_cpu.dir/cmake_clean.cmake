file(REMOVE_RECURSE
  "CMakeFiles/audo_cpu.dir/cpu.cpp.o"
  "CMakeFiles/audo_cpu.dir/cpu.cpp.o.d"
  "libaudo_cpu.a"
  "libaudo_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audo_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
