# Empty dependencies file for audo_ed.
# This may be replaced when dependencies are built.
