file(REMOVE_RECURSE
  "libaudo_ed.a"
)
