file(REMOVE_RECURSE
  "CMakeFiles/audo_ed.dir/emulation_device.cpp.o"
  "CMakeFiles/audo_ed.dir/emulation_device.cpp.o.d"
  "CMakeFiles/audo_ed.dir/mli_bridge.cpp.o"
  "CMakeFiles/audo_ed.dir/mli_bridge.cpp.o.d"
  "libaudo_ed.a"
  "libaudo_ed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audo_ed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
