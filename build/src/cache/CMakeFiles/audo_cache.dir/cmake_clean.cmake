file(REMOVE_RECURSE
  "CMakeFiles/audo_cache.dir/cache.cpp.o"
  "CMakeFiles/audo_cache.dir/cache.cpp.o.d"
  "libaudo_cache.a"
  "libaudo_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audo_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
