# Empty compiler generated dependencies file for audo_cache.
# This may be replaced when dependencies are built.
