file(REMOVE_RECURSE
  "libaudo_cache.a"
)
