file(REMOVE_RECURSE
  "CMakeFiles/audo_common.dir/status.cpp.o"
  "CMakeFiles/audo_common.dir/status.cpp.o.d"
  "libaudo_common.a"
  "libaudo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
