file(REMOVE_RECURSE
  "libaudo_common.a"
)
