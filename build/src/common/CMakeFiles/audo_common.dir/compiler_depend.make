# Empty compiler generated dependencies file for audo_common.
# This may be replaced when dependencies are built.
