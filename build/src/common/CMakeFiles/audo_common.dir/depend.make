# Empty dependencies file for audo_common.
# This may be replaced when dependencies are built.
