# Empty dependencies file for audo_mem.
# This may be replaced when dependencies are built.
