file(REMOVE_RECURSE
  "CMakeFiles/audo_mem.dir/pflash.cpp.o"
  "CMakeFiles/audo_mem.dir/pflash.cpp.o.d"
  "libaudo_mem.a"
  "libaudo_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audo_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
