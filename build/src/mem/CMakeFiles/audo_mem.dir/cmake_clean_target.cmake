file(REMOVE_RECURSE
  "libaudo_mem.a"
)
