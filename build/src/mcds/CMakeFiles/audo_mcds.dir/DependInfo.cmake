
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcds/counters.cpp" "src/mcds/CMakeFiles/audo_mcds.dir/counters.cpp.o" "gcc" "src/mcds/CMakeFiles/audo_mcds.dir/counters.cpp.o.d"
  "/root/repo/src/mcds/events.cpp" "src/mcds/CMakeFiles/audo_mcds.dir/events.cpp.o" "gcc" "src/mcds/CMakeFiles/audo_mcds.dir/events.cpp.o.d"
  "/root/repo/src/mcds/mcds.cpp" "src/mcds/CMakeFiles/audo_mcds.dir/mcds.cpp.o" "gcc" "src/mcds/CMakeFiles/audo_mcds.dir/mcds.cpp.o.d"
  "/root/repo/src/mcds/trace.cpp" "src/mcds/CMakeFiles/audo_mcds.dir/trace.cpp.o" "gcc" "src/mcds/CMakeFiles/audo_mcds.dir/trace.cpp.o.d"
  "/root/repo/src/mcds/trigger.cpp" "src/mcds/CMakeFiles/audo_mcds.dir/trigger.cpp.o" "gcc" "src/mcds/CMakeFiles/audo_mcds.dir/trigger.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/audo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/audo_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/audo_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
