file(REMOVE_RECURSE
  "libaudo_mcds.a"
)
