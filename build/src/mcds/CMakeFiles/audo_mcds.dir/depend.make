# Empty dependencies file for audo_mcds.
# This may be replaced when dependencies are built.
