file(REMOVE_RECURSE
  "CMakeFiles/audo_mcds.dir/counters.cpp.o"
  "CMakeFiles/audo_mcds.dir/counters.cpp.o.d"
  "CMakeFiles/audo_mcds.dir/events.cpp.o"
  "CMakeFiles/audo_mcds.dir/events.cpp.o.d"
  "CMakeFiles/audo_mcds.dir/mcds.cpp.o"
  "CMakeFiles/audo_mcds.dir/mcds.cpp.o.d"
  "CMakeFiles/audo_mcds.dir/trace.cpp.o"
  "CMakeFiles/audo_mcds.dir/trace.cpp.o.d"
  "CMakeFiles/audo_mcds.dir/trigger.cpp.o"
  "CMakeFiles/audo_mcds.dir/trigger.cpp.o.d"
  "libaudo_mcds.a"
  "libaudo_mcds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audo_mcds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
