file(REMOVE_RECURSE
  "libaudo_soc.a"
)
