# Empty dependencies file for audo_soc.
# This may be replaced when dependencies are built.
