file(REMOVE_RECURSE
  "CMakeFiles/audo_soc.dir/soc.cpp.o"
  "CMakeFiles/audo_soc.dir/soc.cpp.o.d"
  "libaudo_soc.a"
  "libaudo_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audo_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
