file(REMOVE_RECURSE
  "libaudo_isa.a"
)
