file(REMOVE_RECURSE
  "CMakeFiles/audo_isa.dir/assembler.cpp.o"
  "CMakeFiles/audo_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/audo_isa.dir/isa.cpp.o"
  "CMakeFiles/audo_isa.dir/isa.cpp.o.d"
  "CMakeFiles/audo_isa.dir/program.cpp.o"
  "CMakeFiles/audo_isa.dir/program.cpp.o.d"
  "libaudo_isa.a"
  "libaudo_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audo_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
