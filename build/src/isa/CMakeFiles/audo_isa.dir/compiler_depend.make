# Empty compiler generated dependencies file for audo_isa.
# This may be replaced when dependencies are built.
