file(REMOVE_RECURSE
  "CMakeFiles/engine_profiling.dir/engine_profiling.cpp.o"
  "CMakeFiles/engine_profiling.dir/engine_profiling.cpp.o.d"
  "engine_profiling"
  "engine_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
