# Empty dependencies file for engine_profiling.
# This may be replaced when dependencies are built.
