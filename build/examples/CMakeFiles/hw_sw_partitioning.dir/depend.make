# Empty dependencies file for hw_sw_partitioning.
# This may be replaced when dependencies are built.
