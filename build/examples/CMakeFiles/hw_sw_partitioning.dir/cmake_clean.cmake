file(REMOVE_RECURSE
  "CMakeFiles/hw_sw_partitioning.dir/hw_sw_partitioning.cpp.o"
  "CMakeFiles/hw_sw_partitioning.dir/hw_sw_partitioning.cpp.o.d"
  "hw_sw_partitioning"
  "hw_sw_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_sw_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
