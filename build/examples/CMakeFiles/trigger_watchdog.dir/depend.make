# Empty dependencies file for trigger_watchdog.
# This may be replaced when dependencies are built.
