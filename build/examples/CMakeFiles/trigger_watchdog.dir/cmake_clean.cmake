file(REMOVE_RECURSE
  "CMakeFiles/trigger_watchdog.dir/trigger_watchdog.cpp.o"
  "CMakeFiles/trigger_watchdog.dir/trigger_watchdog.cpp.o.d"
  "trigger_watchdog"
  "trigger_watchdog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trigger_watchdog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
