file(REMOVE_RECURSE
  "CMakeFiles/architecture_exploration.dir/architecture_exploration.cpp.o"
  "CMakeFiles/architecture_exploration.dir/architecture_exploration.cpp.o.d"
  "architecture_exploration"
  "architecture_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/architecture_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
