# Empty dependencies file for architecture_exploration.
# This may be replaced when dependencies are built.
