// audo-replay: the differential replay oracle of the record/replay
// regression lab. Loads a golden ReplaySpec (recorded by audo-profile
// --record or audo-faultcamp --record), reconstructs the scenario from
// the JSON alone, re-runs it under any host configuration and verifies
// every recorded digest. On mismatch it bisects to the first divergent
// window — restoring a quiescent soc::Snapshot checkpoint when one is
// available — re-steps it frame by frame and reports the first divergent
// cycle with per-field diffs and surrounding context.
//
//   audo-replay golden.json [options]
//     --exec-tier T        re-run under 'accurate' or 'superblock'
//                          (default: as recorded)
//     --fast-forward       force idle fast-forward on
//     --no-fast-forward    force idle fast-forward off
//     --jobs N             fault-campaign worker override
//     --mutate KNOB=VALUE  deliberately mutate the replayed architecture
//                          (flash_ws, lmu_latency, spr_latency,
//                          dflash_read, dflash_write, icache, dcache,
//                          issue_width);
//                          repeatable. The oracle is expected to FAIL
//                          and name the first divergent cycle.
//     --context N          context frames around the divergence (def. 8)
//     --divergence FILE    write the structured divergence report
//                          (trisim-divergence/1 JSON)
//
// Exit codes: 0 = bit-identical replay, 1 = divergence, 2 = usage or
// unloadable/corrupt golden.
#include <cstdio>
#include <cstring>
#include <fstream>

#include "replay/oracle.hpp"
#include "replay/replay.hpp"

using namespace audo;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: audo-replay golden.json [--exec-tier "
               "accurate|superblock]\n"
               "       [--fast-forward | --no-fast-forward] [--jobs N]\n"
               "       [--mutate KNOB=VALUE]... [--context N]\n"
               "       [--divergence FILE]\n");
}

}  // namespace

int main(int argc, char** argv) {
  const char* golden_path = nullptr;
  const char* divergence_path = nullptr;
  replay::OracleOptions options;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--exec-tier") == 0) {
      options.exec_tier = next_value();
      if (options.exec_tier != "accurate" &&
          options.exec_tier != "superblock") {
        std::fprintf(stderr, "--exec-tier wants 'accurate' or 'superblock'\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--fast-forward") == 0) {
      options.fast_forward = 1;
    } else if (std::strcmp(arg, "--no-fast-forward") == 0) {
      options.fast_forward = 0;
    } else if (std::strcmp(arg, "--jobs") == 0) {
      options.jobs =
          static_cast<unsigned>(std::strtoul(next_value(), nullptr, 0));
    } else if (std::strcmp(arg, "--mutate") == 0) {
      const char* kv = next_value();
      const char* eq = std::strchr(kv, '=');
      if (eq == nullptr || eq == kv) {
        std::fprintf(stderr, "--mutate wants KNOB=VALUE, got '%s'\n", kv);
        return 2;
      }
      options.mutations.emplace_back(std::string(kv, eq),
                                     std::strtoull(eq + 1, nullptr, 0));
    } else if (std::strcmp(arg, "--context") == 0) {
      options.context_frames =
          static_cast<unsigned>(std::strtoul(next_value(), nullptr, 0));
    } else if (std::strcmp(arg, "--divergence") == 0) {
      divergence_path = next_value();
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg);
      usage();
      return 2;
    } else if (golden_path == nullptr) {
      golden_path = arg;
    } else {
      usage();
      return 2;
    }
  }
  if (golden_path == nullptr) {
    usage();
    return 2;
  }

  auto spec = replay::ReplaySpec::from_file(golden_path);
  if (!spec.is_ok()) {
    std::fprintf(stderr, "%s: %s\n", golden_path,
                 spec.status().to_string().c_str());
    return 2;
  }

  auto run = replay::run_replay(spec.value(), options);
  if (!run.is_ok()) {
    std::fprintf(stderr, "%s: %s\n", golden_path,
                 run.status().to_string().c_str());
    return 2;
  }
  const replay::ReplayResult& result = run.value();
  std::printf("%s", result.format().c_str());

  if (divergence_path != nullptr) {
    std::ofstream out(divergence_path, std::ios::binary);
    if (!out || !(out << result.to_json())) {
      std::fprintf(stderr, "cannot write %s\n", divergence_path);
      return 2;
    }
    std::printf("divergence report: %s\n", divergence_path);
  }
  return result.passed ? 0 : 1;
}
