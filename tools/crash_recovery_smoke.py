#!/usr/bin/env python3
"""Crash-recovery smoke test for the resumable fault-campaign service.

Three phases, all against the same campaign (idle-background engine, so
the warm-fork path is exercised too):

1. reference  — run the campaign uninterrupted and record its
                classification hash;
2. kill -9    — start a journaled run, wait until at least a few
                scenarios are fsynced to the manifest, SIGKILL the
                process mid-campaign, then `--resume` from the manifest
                and require the merged classification hash to be
                bit-identical to the reference;
3. SIGINT     — start another journaled run, interrupt it, and require a
                graceful partial flush (exit 130, "aborted" in the
                output, a loadable manifest) that also resumes to the
                reference hash.

Exits nonzero (with a diagnostic) on any mismatch.
"""

import argparse
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

CLASSIFICATION = re.compile(r"classification (0x[0-9a-f]+)")
RESUMED = re.compile(r"resume: (\d+) of (\d+) scenarios journaled")


def fail(message):
    print(f"crash_recovery_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run(cmd, check=True):
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if check and proc.returncode != 0:
        fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
    return proc


def classification_of(output, what):
    match = CLASSIFICATION.search(output)
    if not match:
        fail(f"no classification hash in {what} output:\n{output}")
    return match.group(1)


def wait_for_manifest_lines(path, want, proc, timeout_s):
    """Poll until the manifest has `want` lines or the campaign exits."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            return  # finished before we could interfere; still a valid run
        try:
            with open(path, "rb") as f:
                if f.read().count(b"\n") >= want:
                    return
        except FileNotFoundError:
            pass
        time.sleep(0.01)
    fail(f"manifest {path} never reached {want} lines")


def resume_and_check(args, base, manifest, reference, label):
    proc = run(base + ["--resume", manifest])
    match = RESUMED.search(proc.stdout)
    if not match:
        fail(f"{label}: no resume line in output:\n{proc.stdout}")
    replayed, planned = int(match.group(1)), int(match.group(2))
    if planned != args.scenarios:
        fail(f"{label}: resumed campaign plans {planned} scenarios, "
             f"expected {args.scenarios}")
    got = classification_of(proc.stdout, label)
    if got != reference:
        fail(f"{label}: classification {got} != uninterrupted {reference}")
    print(f"  {label}: replayed {replayed}/{planned} journaled scenarios, "
          f"classification {got} matches")
    return replayed


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--faultcamp", default="build/tools/audo-faultcamp",
                        help="path to the audo-faultcamp binary")
    parser.add_argument("--scenarios", type=int, default=48)
    parser.add_argument("--idle-revs", type=int, default=3)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--seed", type=int, default=9)
    parser.add_argument("--timeout-s", type=float, default=120.0,
                        help="overall per-phase safety timeout")
    args = parser.parse_args()

    base = [args.faultcamp,
            "--idle-revs", str(args.idle_revs),
            "--scenarios", str(args.scenarios),
            "--jobs", str(args.jobs),
            "--seed", str(args.seed)]

    # Phase 1: uninterrupted reference.
    reference = classification_of(run(base).stdout, "reference")
    print(f"  reference classification {reference}")

    with tempfile.TemporaryDirectory(prefix="audo-crashsmoke-") as tmp:
        # Phase 2: kill -9 mid-campaign, then resume.
        manifest = os.path.join(tmp, "killed.jsonl")
        victim = subprocess.Popen(base + ["--manifest", manifest],
                                  stdout=subprocess.DEVNULL,
                                  stderr=subprocess.DEVNULL)
        # Header + at least 3 scenario records in the journal.
        wait_for_manifest_lines(manifest, 4, victim, args.timeout_s)
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
        victim.wait()
        resume_and_check(args, base, manifest, reference, "after kill -9")

        # Phase 3: SIGINT flushes a consistent partial manifest.
        manifest = os.path.join(tmp, "interrupted.jsonl")
        victim = subprocess.Popen(base + ["--manifest", manifest],
                                  stdout=subprocess.PIPE,
                                  stderr=subprocess.STDOUT, text=True)
        wait_for_manifest_lines(manifest, 4, victim, args.timeout_s)
        interrupted_early = victim.poll() is None
        if interrupted_early:
            victim.send_signal(signal.SIGINT)
        output, _ = victim.communicate(timeout=args.timeout_s)
        if interrupted_early:
            if victim.returncode != 130:
                fail(f"SIGINT exit code {victim.returncode}, expected 130")
            if "aborted:" not in output:
                fail(f"no abort notice after SIGINT:\n{output}")
            print("  SIGINT: graceful abort (exit 130, partial manifest "
                  "flushed)")
        else:
            # The campaign outran us; its complete manifest still resumes.
            print("  SIGINT: campaign finished before the signal landed")
        resume_and_check(args, base, manifest, reference, "after SIGINT")

    print("crash_recovery_smoke: PASS")


if __name__ == "__main__":
    main()
