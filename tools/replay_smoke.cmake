# Record/replay smoke: capture an engine golden with audo-profile
# --record, then replay it bit-identically under the opposite execution
# tier and with a deliberate mutation (which must fail with a frame-level
# divergence). Driven by CTest via -P; PROFILE/REPLAY/GOLDEN come in as
# -D definitions.
execute_process(
  COMMAND ${PROFILE} --engine --cycles 120000 --exec-tier superblock
          --record ${GOLDEN}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "record failed: ${rc}")
endif()

execute_process(COMMAND ${REPLAY} ${GOLDEN} RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "identical replay failed: ${rc}")
endif()

execute_process(
  COMMAND ${REPLAY} ${GOLDEN} --exec-tier accurate --no-fast-forward
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cross-tier replay failed: ${rc}")
endif()

execute_process(
  COMMAND ${REPLAY} ${GOLDEN} --mutate flash_ws=6
          --divergence ${GOLDEN}.div.json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "mutated replay should diverge (exit 1), got: ${rc}")
endif()
