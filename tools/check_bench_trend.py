#!/usr/bin/env python3
"""Guard the committed throughput baseline against silent regressions.

Compares a freshly produced BENCH_throughput.json artifact (from
tools/bench_throughput.py) against the baseline committed at the repo
root. Absolute cycles/second numbers are host-dependent — CI runners and
developer machines differ by integer factors — so the comparison is
deliberately generous:

  - structural checks are hard: both files must carry the
    trisim-bench-throughput/1 schema, and the fresh run's bit-identity
    checks (parallel sweep vs serial, fast-forward vs stepped) must pass;
  - deterministic counters are exact: the fast-forward run must skip the
    same simulated cycles and take the same wakeups as the baseline —
    these depend only on the workload, so any drift is a real behaviour
    change, not noise;
  - throughput is banded: single-run cycles/second and the fast-forward
    speedup may drop to --tolerance (default 0.5, i.e. half) of the
    baseline before the check fails. Within the band, changes are
    reported but accepted as host noise;
  - the execution tiers are held tighter: the dense-kernel run measures
    both tiers back to back in one process, so their ns/cycle trajectory
    is comparable run-to-run — either tier slowing down by more than
    --dense-tolerance (default 1.15, i.e. +15%) over the baseline fails,
    as does the superblock tier's speedup dropping below
    --min-dense-speedup (default 3.0).

Usage:
  tools/check_bench_trend.py fresh.json [--baseline BENCH_throughput.json]
      [--tolerance 0.5]
"""

import argparse
import json
import sys


def fail(msg):
    print("FAIL: " + msg, file=sys.stderr)
    return False


def check(fresh, base, tolerance, dense_tolerance, min_dense_speedup):
    ok = True
    for name, doc in (("fresh", fresh), ("baseline", base)):
        if doc.get("schema") != "trisim-bench-throughput/1":
            ok = fail("%s artifact has schema %r" % (name, doc.get("schema")))
    if not ok:
        return False

    # Hard: bit-identity never regresses, on any host.
    if not fresh["sweep"]["identical_to_serial"]:
        ok = fail("parallel sweep diverged from serial")
    if not fresh["fast_forward"]["identical_to_stepped"]:
        ok = fail("fast-forward run diverged from stepped run")
    if not fresh.get("warm_fork", {}).get("identical_to_cold", True):
        ok = fail("warm-forked campaign diverged from cold boots")
    if not fresh.get("campaign_scaling", {}).get("identical_across_jobs",
                                                 True):
        ok = fail("campaign classification changed with the job count")

    # Exact: simulated-work counters are host-independent.
    for key in ("cycles", "skipped_cycles", "wakeups"):
        fv = fresh["fast_forward"][key]
        bv = base["fast_forward"][key]
        if fv != bv:
            ok = fail("fast_forward.%s changed: baseline %d, fresh %d "
                      "(deterministic counter — this is a behaviour change)"
                      % (key, bv, fv))
    if fresh["single_run"]["cycles"] != base["single_run"]["cycles"]:
        ok = fail("single_run.cycles changed: baseline %d, fresh %d"
                  % (base["single_run"]["cycles"],
                     fresh["single_run"]["cycles"]))

    # Banded: throughput may wobble with the host, not collapse.
    banded = [
        ("single_run.cache_on_cycles_per_second",
         fresh["single_run"]["cache_on_cycles_per_second"],
         base["single_run"]["cache_on_cycles_per_second"]),
        ("single_run.cache_off_cycles_per_second",
         fresh["single_run"]["cache_off_cycles_per_second"],
         base["single_run"]["cache_off_cycles_per_second"]),
        ("fast_forward.speedup",
         fresh["fast_forward"]["speedup"],
         base["fast_forward"]["speedup"]),
        ("single_run.dag_observer_cycles_per_second",
         fresh["single_run"].get("dag_observer_cycles_per_second", 0),
         base["single_run"].get("dag_observer_cycles_per_second", 0)),
        ("warm_fork.speedup",
         fresh.get("warm_fork", {}).get("speedup", 0),
         base.get("warm_fork", {}).get("speedup", 0)),
        ("campaign_scaling.campaign_scenarios_per_sec",
         fresh.get("campaign_scaling", {}).get("campaign_scenarios_per_sec",
                                               0),
         base.get("campaign_scaling", {}).get("campaign_scenarios_per_sec",
                                              0)),
    ]
    for name, fv, bv in banded:
        if bv <= 0:
            continue
        ratio = fv / bv
        status = "ok" if ratio >= tolerance else "REGRESSED"
        print("  %-42s baseline %12.1f  fresh %12.1f  (%.2fx, %s)"
              % (name, bv, fv, ratio, status))
        if ratio < tolerance:
            ok = fail("%s fell to %.2fx of baseline (floor %.2fx)"
                      % (name, ratio, tolerance))

    # Execution tiers (absent from pre-superblock baselines): the dense
    # run is a same-process A/B, so hold both tiers' ns/cycle to the
    # tight band and the tier speedup to its hard floor.
    ft = fresh.get("exec_tiers", {})
    bt = base.get("exec_tiers", {})
    if ft and bt:
        if not ft.get("identical_to_accurate", True):
            ok = fail("superblock tier diverged from the accurate stepper")
        for key in ("accurate_ns_per_cycle", "superblock_ns_per_cycle"):
            fv, bv = ft.get(key, 0.0), bt.get(key, 0.0)
            if bv <= 0 or fv <= 0:
                continue
            ratio = fv / bv  # ns/cycle: higher is worse
            status = "ok" if ratio <= dense_tolerance else "REGRESSED"
            print("  %-42s baseline %12.2f  fresh %12.2f  (%.2fx, %s)"
                  % ("exec_tiers." + key, bv, fv, ratio, status))
            if ratio > dense_tolerance:
                ok = fail("exec_tiers.%s slowed to %.2fx of baseline "
                          "(ceiling %.2fx)" % (key, ratio, dense_tolerance))
        speedup = ft.get("speedup", 0.0)
        if speedup > 0 and speedup < min_dense_speedup:
            ok = fail("exec_tiers.speedup %.2fx < required %.2fx"
                      % (speedup, min_dense_speedup))
    return ok


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("fresh", help="freshly produced bench artifact")
    ap.add_argument("--baseline", default="BENCH_throughput.json",
                    help="committed baseline (default BENCH_throughput.json)")
    ap.add_argument("--tolerance", type=float, default=0.5,
                    help="minimum fresh/baseline ratio for throughput "
                         "numbers (default 0.5)")
    ap.add_argument("--dense-tolerance", type=float, default=1.15,
                    help="maximum fresh/baseline ns-per-cycle ratio for "
                         "either execution tier (default 1.15 = +15%%)")
    ap.add_argument("--min-dense-speedup", type=float, default=3.0,
                    help="hard floor for the superblock tier's dense-kernel "
                         "speedup (default 3.0)")
    args = ap.parse_args()

    with open(args.fresh) as f:
        fresh = json.load(f)
    with open(args.baseline) as f:
        base = json.load(f)

    print("bench trend: %s vs baseline %s (tolerance %.2fx)"
          % (args.fresh, args.baseline, args.tolerance))
    if not check(fresh, base, args.tolerance, args.dense_tolerance,
                 args.min_dense_speedup):
        return 1
    print("bench trend: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
