#!/usr/bin/env python3
"""Validate replay goldens against tools/replay_schema.json.

Reuses the dependency-free JSON-Schema-subset validator from
check_report.py. Beyond schema shape, enforces the golden invariants the
oracle relies on: a frame golden's window list must be contiguous from
index 0 and its frame counts must sum to total_frames; a campaign
golden's row count must equal its scenario count.

Usage:  check_replay_schema.py golden.json [golden2.json ...]
Exit 0 when every golden validates; exit 1 otherwise. Used by the CI
replay-goldens job.
"""
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from check_report import validate  # noqa: E402


def check_invariants(spec, errors):
    digests = spec.get("digests", {})
    windows = digests.get("windows", [])
    if windows:
        for i, w in enumerate(windows):
            if w.get("index") != i:
                errors.append(f"$.digests.windows[{i}]: index {w.get('index')}"
                              f" is not contiguous from 0")
        total = sum(w.get("frames", 0) for w in windows)
        if total != digests.get("total_frames"):
            errors.append(f"$.digests: window frames sum to {total}, "
                          f"total_frames says {digests.get('total_frames')}")
    campaign = spec.get("campaign", {})
    if campaign.get("enabled"):
        if len(campaign.get("runs", [])) != campaign.get("scenarios"):
            errors.append(f"$.campaign: {len(campaign.get('runs', []))} run "
                          f"rows for {campaign.get('scenarios')} scenarios")
    if not windows and not campaign.get("enabled"):
        errors.append("$: golden verifies nothing (no windows, no campaign)")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    schema_path = os.path.join(os.path.dirname(os.path.abspath(argv[0])),
                               "replay_schema.json")
    with open(schema_path) as f:
        schema = json.load(f)
    failed = False
    for path in argv[1:]:
        with open(path) as f:
            spec = json.load(f)
        errors = []
        validate(spec, schema, "$", errors)
        check_invariants(spec, errors)
        if errors:
            failed = True
            print(f"{path}: INVALID:")
            for e in errors:
                print(f"  {e}")
        else:
            windows = len(spec["digests"]["windows"])
            rows = len(spec["campaign"]["runs"])
            print(f"{path}: OK ({spec['name']}, {windows} windows, "
                  f"{rows} campaign rows)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
