#!/usr/bin/env python3
"""Regenerate the committed replay golden library in replays/.

Runs the record modes of audo-profile and audo-faultcamp from a build
directory and writes one golden per library entry:

  engine_superblock.json       engine workload, superblock tier
  engine_accurate.json         engine workload, accurate tier
  transmission_superblock.json transmission workload, superblock tier
  faultcamp_engine.json        seeded fault campaign classification

Goldens only need regenerating when simulator behaviour intentionally
changes; CI replays the committed set bit-identically under both exec
tiers (the replay-goldens job) and fails on any drift.

Usage:  make_goldens.py [build_dir] [out_dir]
"""
import os
import subprocess
import sys


GOLDENS = [
    ("engine_superblock.json", "audo-profile",
     ["--engine", "--cycles", "120000", "--exec-tier", "superblock"]),
    ("engine_accurate.json", "audo-profile",
     ["--engine", "--cycles", "120000", "--exec-tier", "accurate"]),
    ("transmission_superblock.json", "audo-profile",
     ["--transmission", "--cycles", "120000", "--exec-tier", "superblock"]),
    ("faultcamp_engine.json", "audo-faultcamp",
     ["--scenarios", "8", "--seed", "11", "--jobs", "2",
      "--cycles", "200000", "--bg", "120"]),
]


def main(argv):
    build = argv[1] if len(argv) > 1 else "build"
    repo = os.path.dirname(os.path.dirname(os.path.abspath(argv[0])))
    out_dir = argv[2] if len(argv) > 2 else os.path.join(repo, "replays")
    os.makedirs(out_dir, exist_ok=True)
    for name, tool, args in GOLDENS:
        binary = os.path.join(build, "tools", tool)
        out = os.path.join(out_dir, name)
        cmd = [binary] + args + ["--record", out]
        print("+", " ".join(cmd))
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
        print(f"  wrote {out}")
    check = os.path.join(repo, "tools", "check_replay_schema.py")
    paths = [os.path.join(out_dir, name) for name, _, _ in GOLDENS]
    subprocess.run([sys.executable, check] + paths, check=True)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
