// audo-profile: command-line driver for the Enhanced System Profiling
// methodology. Assembles a TRC program, runs it on a simulated Emulation
// Device, and reports the measured parameter series — plus optional
// function profiles, execution listings and CSV exports.
//
//   audo-profile program.s [options]
//   audo-profile --engine [options]
//   audo-profile --transmission [options]
//     --engine            profile the bundled engine-control workload
//                         instead of assembling a source file
//     --transmission      profile the bundled transmission-control
//                         workload (time-triggered task set)
//     --cycles N          simulation budget (default 2000000)
//     --resolution N      basis ticks per rate sample (default 1000)
//     --flow              program-flow trace (implied by --functions/--listing)
//     --data              data trace
//     --irq               interrupt trace
//     --cycle-accurate    per-cycle tick messages (expensive)
//     --functions         print the function-level profile
//     --cpi-stacks        per-function CPI stacks from the per-cycle
//                         stall attribution, plus the master×slave
//                         interference matrix
//     --top N             rows in the function/CPI tables (default 20)
//     --listing N         print the first N reconstructed instructions
//     --series-csv FILE   write the rate series as CSV
//     --events-csv FILE   write the decoded messages as CSV
//     --csv FILE          write the CPI-stack table as CSV (implies
//                         --cpi-stacks)
//     --interference-csv FILE   write the interference matrix as CSV
//     --dag               build the execution DAG (task/ISR activations,
//                         causal edges, critical path, per-task slack and
//                         bottleneck labels) and print the summary
//     --critical-path     print the full critical-path chain (implies
//                         --dag)
//     --dag-csv FILE      write the DAG node table as CSV (implies --dag)
//     --dag-dot FILE      write the DAG as Graphviz dot (implies --dag)
//     --no-icache / --no-dcache
//     --flash-ws N        flash wait states (default 5)
//     --emem-kib N        trace memory size (default 384 usable)
//     --jobs N            host threads (recorded in the report; a single
//                         profiling run is inherently serial)
//     --no-fast-forward   step every idle cycle instead of skipping
//                         quiescent stretches (bit-identical, slower)
//     --exec-tier T       execution engine: 'superblock' (default) or
//                         'accurate' (bit-identical, slower)
//     --tier-report       print the execution-tier coverage summary
//                         (fast windows, fast/stepped cycle split and
//                         the gate/bail decline reasons)
//     --report FILE       write a structured RunReport JSON
//     --perfetto FILE     write a Chrome/Perfetto trace JSON
//     --record FILE       record a replay golden (trisim-replay/1 JSON)
//                         for the regression lab; --engine or
//                         --transmission only (the workload recipe must
//                         be reconstructible from options alone)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "host/sim_pool.hpp"
#include "isa/assembler.hpp"
#include "profiling/export.hpp"
#include "profiling/function_profile.hpp"
#include "profiling/listing.hpp"
#include "profiling/session.hpp"
#include "replay/replay.hpp"
#include "soc/frame_digest.hpp"
#include "soc/tracer.hpp"
#include "telemetry/host_profiler.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/run_report.hpp"
#include "workload/engine.hpp"
#include "workload/transmission.hpp"

using namespace audo;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: audo-profile {program.s | --engine | --transmission} "
               "[--cycles N] [--resolution N]\n"
               "       [--flow] [--data] [--irq] [--cycle-accurate]\n"
               "       [--functions] [--cpi-stacks] [--top N] [--listing N]\n"
               "       [--series-csv FILE] [--events-csv FILE] [--csv FILE]\n"
               "       [--interference-csv FILE] [--dag] [--critical-path]\n"
               "       [--dag-csv FILE] [--dag-dot FILE]\n"
               "       [--no-icache] [--no-dcache]\n"
               "       [--flash-ws N] [--emem-kib N] [--jobs N]\n"
               "       [--no-fast-forward] [--exec-tier accurate|superblock]\n"
               "       [--tier-report] [--report FILE] [--perfetto FILE]\n"
               "       [--record FILE]\n");
}

bool write_file(const char* path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const char* source_path = nullptr;
  bool engine = false;
  bool transmission = false;
  u64 cycles = 2'000'000;
  u32 resolution = 1000;
  bool functions = false;
  bool cpi_stacks = false;
  usize top_n = 20;
  usize listing_lines = 0;
  const char* series_csv = nullptr;
  const char* events_csv = nullptr;
  const char* cpi_csv = nullptr;
  const char* interference_csv = nullptr;
  bool critical_path = false;
  const char* dag_csv = nullptr;
  const char* dag_dot = nullptr;
  const char* report_path = nullptr;
  const char* perfetto_path = nullptr;
  const char* record_path = nullptr;
  bool tier_report = false;
  unsigned jobs = host::SimPool::hardware_jobs();

  soc::SocConfig chip;
  profiling::SessionOptions options;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--engine") == 0) {
      engine = true;
    } else if (std::strcmp(arg, "--transmission") == 0) {
      transmission = true;
    } else if (std::strcmp(arg, "--cycles") == 0) {
      cycles = std::strtoull(next_value(), nullptr, 0);
    } else if (std::strcmp(arg, "--resolution") == 0) {
      resolution = static_cast<u32>(std::strtoul(next_value(), nullptr, 0));
    } else if (std::strcmp(arg, "--flow") == 0) {
      options.program_trace = true;
    } else if (std::strcmp(arg, "--data") == 0) {
      options.data_trace = true;
    } else if (std::strcmp(arg, "--irq") == 0) {
      options.irq_trace = true;
    } else if (std::strcmp(arg, "--cycle-accurate") == 0) {
      options.cycle_accurate = true;
    } else if (std::strcmp(arg, "--functions") == 0) {
      functions = true;
      options.program_trace = true;
    } else if (std::strcmp(arg, "--cpi-stacks") == 0) {
      cpi_stacks = true;
      options.cpi_stacks = true;
    } else if (std::strcmp(arg, "--top") == 0) {
      top_n = std::strtoull(next_value(), nullptr, 0);
    } else if (std::strcmp(arg, "--csv") == 0) {
      cpi_csv = next_value();
      options.cpi_stacks = true;
    } else if (std::strcmp(arg, "--interference-csv") == 0) {
      interference_csv = next_value();
    } else if (std::strcmp(arg, "--dag") == 0) {
      options.dag = true;
    } else if (std::strcmp(arg, "--critical-path") == 0) {
      critical_path = true;
      options.dag = true;
    } else if (std::strcmp(arg, "--dag-csv") == 0) {
      dag_csv = next_value();
      options.dag = true;
    } else if (std::strcmp(arg, "--dag-dot") == 0) {
      dag_dot = next_value();
      options.dag = true;
    } else if (std::strcmp(arg, "--listing") == 0) {
      listing_lines = std::strtoull(next_value(), nullptr, 0);
      options.program_trace = true;
    } else if (std::strcmp(arg, "--series-csv") == 0) {
      series_csv = next_value();
    } else if (std::strcmp(arg, "--events-csv") == 0) {
      events_csv = next_value();
    } else if (std::strcmp(arg, "--jobs") == 0) {
      jobs = static_cast<unsigned>(std::strtoul(next_value(), nullptr, 0));
      if (jobs == 0) jobs = host::SimPool::hardware_jobs();
    } else if (std::strcmp(arg, "--report") == 0) {
      report_path = next_value();
    } else if (std::strcmp(arg, "--perfetto") == 0) {
      perfetto_path = next_value();
    } else if (std::strcmp(arg, "--record") == 0) {
      record_path = next_value();
    } else if (std::strcmp(arg, "--tier-report") == 0) {
      tier_report = true;
    } else if (std::strcmp(arg, "--no-fast-forward") == 0) {
      chip.fast_forward = false;
    } else if (std::strcmp(arg, "--exec-tier") == 0) {
      const char* tier = next_value();
      if (std::strcmp(tier, "accurate") == 0) {
        chip.exec_tier = soc::SocConfig::ExecTier::kAccurate;
      } else if (std::strcmp(tier, "superblock") == 0) {
        chip.exec_tier = soc::SocConfig::ExecTier::kSuperblock;
      } else {
        std::fprintf(stderr, "--exec-tier wants 'accurate' or 'superblock'\n");
        usage();
        return 2;
      }
    } else if (std::strcmp(arg, "--no-icache") == 0) {
      chip.icache.enabled = false;
    } else if (std::strcmp(arg, "--no-dcache") == 0) {
      chip.dcache.enabled = false;
    } else if (std::strcmp(arg, "--flash-ws") == 0) {
      chip.pflash.wait_states =
          static_cast<unsigned>(std::strtoul(next_value(), nullptr, 0));
    } else if (std::strcmp(arg, "--emem-kib") == 0) {
      options.ed.emem.size_bytes =
          static_cast<u32>(std::strtoul(next_value(), nullptr, 0)) * 1024;
      options.ed.emem.overlay_bytes = 0;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg);
      usage();
      return 2;
    } else {
      source_path = arg;
    }
  }
  if ((source_path == nullptr && !engine && !transmission) ||
      (engine && transmission)) {
    usage();
    return 2;
  }
  if (record_path != nullptr) {
    if (!engine && !transmission) {
      std::fprintf(stderr,
                   "--record needs --engine or --transmission (the golden "
                   "must be reconstructible from workload options alone)\n");
      return 2;
    }
    if (options.data_trace || options.cycle_accurate || options.cpi_stacks) {
      std::fprintf(stderr,
                   "--record does not support --data, --cycle-accurate or "
                   "--cpi-stacks (their trace streams are not part of the "
                   "replay schema)\n");
      return 2;
    }
  }

  isa::Program program;
  Addr tc_entry = 0;
  Addr pcp_entry = 0;
  workload::EngineOptions engine_options;
  workload::TransmissionOptions transmission_options;
  if (transmission) {
    source_path = "<transmission workload>";
    auto built = workload::build_transmission_workload(transmission_options);
    if (!built.is_ok()) {
      std::fprintf(stderr, "transmission workload: %s\n",
                   built.status().to_string().c_str());
      return 1;
    }
    transmission_options = built.value().options;
    tc_entry = built.value().tc_entry;
    program = std::move(built).value().program;
  } else if (engine) {
    source_path = "<engine workload>";
    auto built = workload::build_engine_workload(engine_options);
    if (!built.is_ok()) {
      std::fprintf(stderr, "engine workload: %s\n",
                   built.status().to_string().c_str());
      return 1;
    }
    engine_options = built.value().options;
    tc_entry = built.value().tc_entry;
    pcp_entry = built.value().pcp_entry;
    program = std::move(built).value().program;
  } else {
    std::ifstream in(source_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", source_path);
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto assembled = isa::assemble(buffer.str());
    if (!assembled.is_ok()) {
      std::fprintf(stderr, "%s: %s\n", source_path,
                   assembled.status().to_string().c_str());
      return 1;
    }
    program = std::move(assembled).value();
    tc_entry = program.entry();
  }

  options.resolution = resolution;
  profiling::ProfilingSession session(chip, options);
  if (Status s = session.load(program); !s.is_ok()) {
    std::fprintf(stderr, "load: %s\n", s.to_string().c_str());
    return 1;
  }
  if (engine) {
    workload::configure_engine(session.device().soc(), engine_options);
  } else if (transmission) {
    workload::configure_transmission(session.device().soc(),
                                     transmission_options);
  }
  // Golden recorder: canonical windowed frame digests, attached like any
  // other observer so recording never perturbs the run.
  soc::WindowedFrameDigest recorder;
  if (record_path != nullptr) {
    session.device().soc().add_frame_observer(&recorder);
  }
  session.reset(tc_entry, pcp_entry);

  // Host telemetry (null-cost when neither flag was given).
  telemetry::MetricsRegistry registry;
  soc::SocTracer tracer;
  telemetry::HostProfiler host;
  const bool telemetry_on = report_path != nullptr || perfetto_path != nullptr;
  if (telemetry_on) {
    session.device().register_metrics(registry);
    if (perfetto_path != nullptr) session.device().set_tracer(&tracer);
    session.device().set_phase_probe(&host.probe());
    host.start(session.device().soc().cycle());
  }

  const profiling::SessionResult result = session.run(cycles);
  if (telemetry_on) {
    host.stop(session.device().soc().cycle());
    // After the run so the per-task slack gauges see the task list.
    if (session.dag() != nullptr) session.dag()->register_metrics(registry);
  }

  std::printf("%s: %llu cycles, %llu instructions, IPC %.3f%s\n", source_path,
              static_cast<unsigned long long>(result.cycles),
              static_cast<unsigned long long>(result.tc_retired), result.ipc,
              session.device().soc().tc().halted() ? " (halted)" : "");
  std::printf("trace: %llu messages, %llu bytes (%.1f bytes/kcycle), "
              "%llu dropped\n\n",
              static_cast<unsigned long long>(result.trace_messages),
              static_cast<unsigned long long>(result.trace_bytes),
              result.bytes_per_kcycle,
              static_cast<unsigned long long>(result.dropped_messages));
  std::printf("%s", profiling::format_series_summary(result.series).c_str());

  if (tier_report) {
    auto& tr_soc = session.device().soc();
    const soc::ExecTierStats& es = tr_soc.exec_stats();
    const u64 ff_skipped = tr_soc.ff_stats().skipped_cycles;
    const u64 accelerated = es.fast_cycles + ff_skipped;
    const u64 stepped =
        tr_soc.cycle() > accelerated ? tr_soc.cycle() - accelerated : 0;
    std::printf("\n== exec tier ==\n"
                "%s: %llu fast windows, %llu fast cycles, "
                "%llu fast-forwarded, %llu stepped\n",
                tr_soc.config().exec_tier ==
                        soc::SocConfig::ExecTier::kSuperblock
                    ? "superblock"
                    : "accurate",
                static_cast<unsigned long long>(es.windows),
                static_cast<unsigned long long>(es.fast_cycles),
                static_cast<unsigned long long>(ff_skipped),
                static_cast<unsigned long long>(stepped));
    std::vector<std::pair<std::string, u64>> declines;
    for (unsigned g = 0; g < soc::kNumFastGates; ++g) {
      if (es.gates[g] == 0) continue;
      declines.emplace_back(
          std::string("gate.") +
              soc::to_string(static_cast<soc::FastGate>(g)),
          es.gates[g]);
    }
    for (unsigned b = 1; b < cpu::kNumFastBails; ++b) {
      if (es.bails[b] == 0) continue;
      declines.emplace_back(
          std::string("bail.") +
              cpu::to_string(static_cast<cpu::FastBail>(b)),
          es.bails[b]);
    }
    std::stable_sort(declines.begin(), declines.end(),
                     [](const auto& a, const auto& b) {
                       return a.second > b.second;
                     });
    for (const auto& [reason, count] : declines) {
      std::printf("  %-24s %llu\n", reason.c_str(),
                  static_cast<unsigned long long>(count));
    }
    if (declines.empty()) std::printf("  (no declines)\n");
  }

  if (functions) {
    profiling::SystemProfiler profiler{isa::SymbolMap(program)};
    profiler.consume(result.messages);
    std::printf("\n== function profile ==\n%s",
                profiler.format_function_profile(top_n).c_str());
    if (options.data_trace) {
      std::printf("\n== data objects ==\n%s",
                  profiler.format_data_profile(top_n).c_str());
    }
  }
  if (cpi_stacks && session.cpi_builder() != nullptr) {
    std::printf("\n== CPI stacks ==\n%s",
                session.cpi_builder()->format(top_n).c_str());
    std::printf("\n== interference matrix ==\n%s",
                profiling::interference_to_text(session.device().soc().sri())
                    .c_str());
  }
  if (session.dag() != nullptr) {
    std::printf("\n== execution DAG ==\n%s",
                session.dag()->format(top_n).c_str());
    if (critical_path) {
      const profiling::DagAnalysis& a = session.dag()->analysis();
      std::printf("\n== critical path (%llu cycles, %zu activations) ==\n",
                  static_cast<unsigned long long>(a.critical_path_cycles),
                  a.critical_path.size());
      for (const u32 id : a.critical_path) {
        const profiling::DagNode& n = a.nodes[id];
        std::printf("  [%llu..%llu] %s %s (%llu cycles)\n",
                    static_cast<unsigned long long>(n.start),
                    static_cast<unsigned long long>(n.end),
                    to_string(n.kind), n.task.c_str(),
                    static_cast<unsigned long long>(n.cycles));
      }
    }
  }
  if (listing_lines > 0) {
    profiling::ListingOptions lo;
    lo.max_lines = listing_lines;
    std::printf("\n== execution listing ==\n%s",
                profiling::execution_listing(program, result.messages, lo)
                    .c_str());
  }
  if (series_csv != nullptr &&
      !write_file(series_csv, profiling::series_to_csv(result.series))) {
    std::fprintf(stderr, "cannot write %s\n", series_csv);
    return 1;
  }
  if (events_csv != nullptr &&
      !write_file(events_csv, profiling::messages_to_csv(result.messages))) {
    std::fprintf(stderr, "cannot write %s\n", events_csv);
    return 1;
  }
  if (cpi_csv != nullptr && session.cpi_builder() != nullptr &&
      !write_file(cpi_csv, session.cpi_builder()->to_csv())) {
    std::fprintf(stderr, "cannot write %s\n", cpi_csv);
    return 1;
  }
  if (dag_csv != nullptr && session.dag() != nullptr &&
      !write_file(dag_csv, session.dag()->to_csv())) {
    std::fprintf(stderr, "cannot write %s\n", dag_csv);
    return 1;
  }
  if (dag_dot != nullptr && session.dag() != nullptr &&
      !write_file(dag_dot, session.dag()->to_dot())) {
    std::fprintf(stderr, "cannot write %s\n", dag_dot);
    return 1;
  }

  auto& soc = session.device().soc();
  if (interference_csv != nullptr &&
      !write_file(interference_csv,
                  profiling::interference_to_csv(soc.sri()))) {
    std::fprintf(stderr, "cannot write %s\n", interference_csv);
    return 1;
  }
  if (perfetto_path != nullptr) {
    tracer.finish(soc.cycle());
    if (session.dag() != nullptr) {
      session.dag()->emit_timeline(tracer.timeline());
    }
    if (Status s = tracer.write_chrome_json(perfetto_path,
                                            soc.config().clock_hz);
        !s.is_ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", perfetto_path,
                   s.to_string().c_str());
      return 1;
    }
    std::printf("perfetto trace: %s (%zu events, %zu tracks)\n", perfetto_path,
                tracer.timeline().event_count(),
                tracer.timeline().track_count());
  }
  if (report_path != nullptr) {
    telemetry::RunReport report;
    report.bench = "audo_profile";
    report.config_name = soc.config().name;
    report.config_fingerprint = soc.config().fingerprint();
    report.cycles = soc.cycle();
    report.instructions = soc.tc().retired();
    report.sim_ipc = result.ipc;
    report.jobs = jobs;
    report.metrics = registry.collect(soc.cycle());
    report.set_host(host);
    report.fast_forward_enabled = soc.config().fast_forward;
    report.ff_skipped_cycles = soc.ff_stats().skipped_cycles;
    report.ff_wakeups = soc.ff_stats().wakeups;
    soc.fill_exec_tier_report(report);
    for (unsigned s = 0; s < soc::kNumWakeSources; ++s) {
      if (soc.ff_stats().wake_counts[s] == 0) continue;
      report.add_wake_source(soc::to_string(static_cast<soc::WakeSource>(s)),
                             soc.ff_stats().wake_counts[s]);
    }
    const auto add_stall_block = [&report](const char* core,
                                           const soc::StallTotals& totals) {
      for (unsigned r = 0; r < mcds::kNumStallRootCauses; ++r) {
        report.add_stall_bucket(
            core, mcds::to_string(static_cast<mcds::StallRootCause>(r)),
            totals.cycles[r]);
      }
    };
    add_stall_block("tc", soc.tc_stall_totals());
    if (soc.pcp() != nullptr) add_stall_block("pcp", soc.pcp_stall_totals());
    for (unsigned s = 0; s < soc.sri().slave_count(); ++s) {
      for (unsigned w = 0; w < bus::kNumMasters; ++w) {
        for (unsigned h = 0; h < bus::kNumMasters; ++h) {
          const u64 c = soc.sri().interference(
              static_cast<bus::MasterId>(w), static_cast<bus::MasterId>(h), s);
          if (c == 0) continue;
          report.add_interference(
              std::string(soc.sri().slave_name(s)),
              bus::to_string(static_cast<bus::MasterId>(w)),
              bus::to_string(static_cast<bus::MasterId>(h)), c);
        }
      }
    }
    if (session.dag() != nullptr) session.dag()->fill_report(report);
    report.add_extra("trace_messages",
                     static_cast<double>(result.trace_messages));
    report.add_extra("bytes_per_kcycle", result.bytes_per_kcycle);
    if (Status s = report.write(report_path); !s.is_ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", report_path,
                   s.to_string().c_str());
      return 1;
    }
    std::printf("run report: %s (%zu metrics, %zu components, "
                "%.0f sim cycles/s)\n",
                report_path, report.metrics.samples.size(),
                report.metrics.component_count(),
                report.sim_cycles_per_second);
  }
  if (record_path != nullptr) {
    recorder.finish();
    replay::ReplaySpec spec;
    spec.name = engine ? "engine" : "transmission";
    spec.scenario.kind = spec.name;
    spec.scenario.run_cycles = cycles;
    spec.scenario.engine = engine_options;
    spec.scenario.transmission = transmission_options;
    spec.scenario.session.enabled = true;
    spec.scenario.session.resolution = options.resolution;
    spec.scenario.session.program_trace = options.program_trace;
    spec.scenario.session.irq_trace = options.irq_trace;
    spec.scenario.session.dag = options.dag;
    spec.config = soc.config();
    spec.config_fingerprint = soc.config().fingerprint();
    spec.cycles = soc.cycle();
    spec.instructions = soc.tc().retired();
    spec.digests.window_bits = recorder.window_bits();
    spec.digests.total_frames = recorder.total_frames();
    spec.digests.stream = recorder.stream_digest();
    spec.digests.windows = recorder.windows();
    spec.digests.mcds_messages = result.messages.size();
    spec.digests.mcds_hash = replay::hash_messages(result.messages);
    if (session.dag() != nullptr) {
      spec.digests.dag_hash = session.dag()->analysis().hash;
    }
    if (Status s = spec.to_file(record_path); !s.is_ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", record_path,
                   s.to_string().c_str());
      return 1;
    }
    std::printf("replay golden: %s (%zu windows, %llu frames)\n", record_path,
                spec.digests.windows.size(),
                static_cast<unsigned long long>(spec.digests.total_frames));
  }
  return 0;
}
