#!/usr/bin/env python3
"""Validate a trisim RunReport JSON against tools/report_schema.json.

Standard library only (no jsonschema dependency): implements exactly the
subset of JSON Schema the report schema uses — type, const, required,
properties, additionalProperties, items, minimum, exclusiveMinimum,
minProperties, minItems.

Usage:  check_report.py report.json [schema.json]
Exit 0 when the report validates; exit 1 with a path-qualified error list
otherwise. Used by the CI smoke test.
"""
import json
import os
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "boolean": bool,
}


def validate(value, schema, path, errors):
    if "const" in schema:
        if value != schema["const"]:
            errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
        return
    expected = schema.get("type")
    if expected is not None:
        py = TYPES[expected]
        # bool is a subclass of int; don't let true/false pass as numbers.
        if not isinstance(value, py) or (expected == "number"
                                         and isinstance(value, bool)):
            errors.append(f"{path}: expected {expected}, "
                          f"got {type(value).__name__}")
            return
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")
        if "exclusiveMinimum" in schema and value <= schema["exclusiveMinimum"]:
            errors.append(f"{path}: {value} <= exclusiveMinimum "
                          f"{schema['exclusiveMinimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required member {key!r}")
        if "minProperties" in schema and len(value) < schema["minProperties"]:
            errors.append(f"{path}: {len(value)} members < minProperties "
                          f"{schema['minProperties']}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, member in value.items():
            if key in props:
                validate(member, props[key], f"{path}.{key}", errors)
            elif isinstance(extra, dict):
                validate(member, extra, f"{path}.{key}", errors)
    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append(f"{path}: {len(value)} items < minItems "
                          f"{schema['minItems']}")
        items = schema.get("items")
        if isinstance(items, dict):
            for i, item in enumerate(value):
                validate(item, items, f"{path}[{i}]", errors)


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    report_path = argv[1]
    schema_path = argv[2] if len(argv) == 3 else os.path.join(
        os.path.dirname(os.path.abspath(argv[0])), "report_schema.json")
    with open(report_path) as f:
        report = json.load(f)
    with open(schema_path) as f:
        schema = json.load(f)
    errors = []
    validate(report, schema, "$", errors)
    if errors:
        print(f"{report_path}: INVALID against {schema_path}:")
        for e in errors:
            print(f"  {e}")
        return 1
    components = len(report["metrics"]["components"])
    rate = report["host"]["sim_cycles_per_second"]
    print(f"{report_path}: OK ({components} components, "
          f"{rate:.0f} sim cycles/s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
