#!/usr/bin/env python3
"""CI perf smoke: run bench_throughput and emit BENCH_throughput.json.

Runs the bench binary, parses its `THROUGHPUT key=value` tail, derives the
headline numbers (single-run cycles/sec with the decode cache on/off, and
serial-vs-parallel sweep wall clock), and writes them as one JSON artifact.

Checks applied:
  - the parallel sweep must be bit-identical to the serial one (always);
  - sweep speedup >= --min-speedup, but only when the host actually has
    enough cores for the requested job count — on a 1- or 2-core CI
    runner a 4-job >=2x target is physically impossible, so the check is
    recorded as "skipped" instead of failing the build;
  - the idle fast-forward run must be bit-identical to the stepped one
    and >= --min-ff-speedup faster (single-process, so no core gate).

Usage:
  tools/bench_throughput.py --bench build/bench/bench_throughput \
      --out BENCH_throughput.json [--jobs 4] [--cycles N] \
      [--min-speedup 2.0]
"""

import argparse
import json
import subprocess
import sys


def parse_throughput_lines(text):
    values = {}
    for line in text.splitlines():
        if not line.startswith("THROUGHPUT "):
            continue
        key, _, raw = line[len("THROUGHPUT "):].partition("=")
        try:
            values[key.strip()] = float(raw)
        except ValueError:
            pass
    return values


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", required=True,
                    help="path to the bench_throughput binary")
    ap.add_argument("--out", required=True,
                    help="output JSON path (BENCH_throughput.json)")
    ap.add_argument("--jobs", type=int, default=4,
                    help="worker threads for the parallel sweep")
    ap.add_argument("--cycles", type=int, default=0,
                    help="single-run cycle budget (0 = bench default)")
    ap.add_argument("--min-speedup", type=float, default=2.0,
                    help="required sweep speedup when cores allow")
    ap.add_argument("--min-ff-speedup", type=float, default=2.0,
                    help="required idle fast-forward speedup")
    ap.add_argument("--min-dense-speedup", type=float, default=3.0,
                    help="required superblock-tier speedup on the dense "
                         "kernels (single-process ratio, host-independent)")
    args = ap.parse_args()

    cmd = [args.bench, "--jobs", str(args.jobs)]
    if args.cycles:
        cmd += ["--cycles", str(args.cycles)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)

    values = parse_throughput_lines(proc.stdout)
    required = [
        "single_run_cache_on_cps", "single_run_cache_off_cps",
        "sweep_serial_seconds", "sweep_parallel_seconds", "sweep_jobs",
        "hardware_jobs", "sweep_identical",
        "ff_on_seconds", "ff_off_seconds", "ff_identical",
    ]
    missing = [k for k in required if k not in values]
    if proc.returncode != 0 or missing:
        print("bench_throughput failed (rc=%d, missing=%s)"
              % (proc.returncode, missing), file=sys.stderr)
        return 1

    serial_s = values["sweep_serial_seconds"]
    parallel_s = values["sweep_parallel_seconds"]
    speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
    hardware_jobs = int(values["hardware_jobs"])
    sweep_jobs = int(values["sweep_jobs"])
    identical = values["sweep_identical"] == 1

    ff_on_s = values["ff_on_seconds"]
    ff_off_s = values["ff_off_seconds"]
    ff_speedup = ff_off_s / ff_on_s if ff_on_s > 0 else 0.0
    ff_identical = values["ff_identical"] == 1

    # Warm-forked fault campaign (optional: absent from older binaries).
    wf_cold_s = values.get("warm_fork_cold_seconds", 0.0)
    wf_warm_s = values.get("warm_fork_warm_seconds", 0.0)
    wf_speedup = wf_cold_s / wf_warm_s if wf_warm_s > 0 else 0.0
    wf_identical = values.get("warm_fork_identical", 1) == 1

    # Campaign jobs scaling (optional: absent from older binaries).
    camp_runs = int(values.get("campaign_scenarios", 0))
    camp_seconds = {j: values.get("campaign_jobs%d_seconds" % j, 0.0)
                    for j in (1, 2, 8)}
    camp_identical = values.get("campaign_jobs_identical", 1) == 1
    camp_per_sec = values.get("campaign_scenarios_per_sec", 0.0)

    # Dense-kernel execution tiers (optional: absent from older binaries).
    dense_acc_ns = values.get("dense_accurate_ns_per_cycle", 0.0)
    dense_sb_ns = values.get("dense_superblock_ns_per_cycle", 0.0)
    dense_speedup = dense_acc_ns / dense_sb_ns if dense_sb_ns > 0 else 0.0
    dense_identical = values.get("dense_identical", 1) == 1
    dense_present = "dense_superblock_ns_per_cycle" in values

    # The speedup criterion only makes sense when the host can actually
    # run the requested workers in parallel.
    enough_cores = hardware_jobs >= sweep_jobs and sweep_jobs >= 2
    speedup_ok = speedup >= args.min_speedup
    ff_speedup_ok = ff_speedup >= args.min_ff_speedup
    checks = {
        "sweep_identical": "pass" if identical else "fail",
        "sweep_speedup": ("pass" if speedup_ok else "fail")
                         if enough_cores else "skipped (host has %d cores "
                         "for a %d-job sweep)" % (hardware_jobs, sweep_jobs),
        "ff_identical": "pass" if ff_identical else "fail",
        "ff_speedup": "pass" if ff_speedup_ok else "fail",
        "warm_fork_identical": "pass" if wf_identical else "fail",
        "campaign_jobs_identical": "pass" if camp_identical else "fail",
        "dense_identical": "pass" if dense_identical else "fail",
        # The dense speedup is a single-process ratio on one host, so
        # unlike the sweep there is no core-count gate.
        "dense_speedup": ("pass" if dense_speedup >= args.min_dense_speedup
                          else "fail") if dense_present else "skipped "
                         "(bench binary has no dense-kernel section)",
    }

    report = {
        "schema": "trisim-bench-throughput/1",
        "single_run": {
            "cycles": int(values.get("single_run_cycles", 0)),
            "cache_on_cycles_per_second": values["single_run_cache_on_cps"],
            "cache_off_cycles_per_second": values["single_run_cache_off_cps"],
            # Dense run with the execution-DAG observer attached (0 when
            # produced by an older bench binary).
            "dag_observer_cycles_per_second":
                values.get("single_run_dag_cps", 0.0),
        },
        "sweep": {
            "jobs": sweep_jobs,
            "hardware_jobs": hardware_jobs,
            "serial_seconds": serial_s,
            "parallel_seconds": parallel_s,
            "speedup": speedup,
            "identical_to_serial": identical,
            "min_speedup_required": args.min_speedup,
        },
        "fast_forward": {
            "cycles": int(values.get("ff_cycles", 0)),
            "on_seconds": ff_on_s,
            "off_seconds": ff_off_s,
            "speedup": ff_speedup,
            "skipped_cycles": int(values.get("ff_skipped_cycles", 0)),
            "wakeups": int(values.get("ff_wakeups", 0)),
            "identical_to_stepped": ff_identical,
            "min_speedup_required": args.min_ff_speedup,
        },
        "warm_fork": {
            "runs": int(values.get("warm_fork_runs", 0)),
            "fork_cycle": int(values.get("warm_fork_cycle", 0)),
            "cold_seconds": wf_cold_s,
            "warm_seconds": wf_warm_s,
            "speedup": wf_speedup,
            "identical_to_cold": wf_identical,
        },
        "campaign_scaling": {
            "runs": camp_runs,
            "jobs_scaling": {
                "1": camp_seconds[1],
                "2": camp_seconds[2],
                "8": camp_seconds[8],
            },
            "campaign_scenarios_per_sec": camp_per_sec,
            "identical_across_jobs": camp_identical,
        },
        "exec_tiers": {
            "cycles": int(values.get("dense_cycles", 0)),
            "accurate_ns_per_cycle": dense_acc_ns,
            "superblock_ns_per_cycle": dense_sb_ns,
            "speedup": dense_speedup,
            "identical_to_accurate": dense_identical,
            "min_speedup_required": args.min_dense_speedup,
        },
        "checks": checks,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print("wrote %s (sweep speedup %.2fx at %d jobs, fast-forward "
          "speedup %.2fx, checks: %s)"
          % (args.out, speedup, sweep_jobs, ff_speedup, checks))

    if not identical:
        print("FAIL: parallel sweep diverged from serial", file=sys.stderr)
        return 1
    if enough_cores and not speedup_ok:
        print("FAIL: sweep speedup %.2fx < required %.2fx"
              % (speedup, args.min_speedup), file=sys.stderr)
        return 1
    if not ff_identical:
        print("FAIL: fast-forward run diverged from stepped run",
              file=sys.stderr)
        return 1
    if not ff_speedup_ok:
        print("FAIL: fast-forward speedup %.2fx < required %.2fx"
              % (ff_speedup, args.min_ff_speedup), file=sys.stderr)
        return 1
    if not wf_identical:
        print("FAIL: warm-forked campaign diverged from cold boots",
              file=sys.stderr)
        return 1
    if not camp_identical:
        print("FAIL: campaign classification changed with the job count",
              file=sys.stderr)
        return 1
    if not dense_identical:
        print("FAIL: superblock tier diverged from the accurate stepper",
              file=sys.stderr)
        return 1
    if dense_present and dense_speedup < args.min_dense_speedup:
        print("FAIL: dense-kernel superblock speedup %.2fx < required %.2fx"
              % (dense_speedup, args.min_dense_speedup), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
