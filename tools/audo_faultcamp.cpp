// audo-faultcamp: parallel fault-injection campaigns over the engine
// workload. Runs a fault-free golden reference, then N seeded fault
// scenarios through the SimPool, and classifies every run as
// masked / corrected / detected / sdc / hang.
//
//   audo-faultcamp [options]
//     --scenarios N     random scenarios to generate (default 16)
//     --seed S          campaign seed (default 1)
//     --jobs N          host threads (0 = hardware; default 0)
//     --cycles N        per-run cycle budget (default 400000)
//     --bg N            engine background iterations to completion
//                       (default 300)
//     --demo            run the five hand-aimed outcome-class scenarios
//                       instead of (or in addition to) the random set
//     --no-ecc-sram     disable the RAM ECC model for random scenarios
//     --no-fast-forward step every idle cycle instead of skipping
//                       quiescent stretches (bit-identical, slower)
//     --report FILE     write a structured RunReport JSON
#include <cstdio>
#include <cstring>

#include "host/sim_pool.hpp"
#include "mem/memory_map.hpp"
#include "optimize/fault_campaign.hpp"
#include "soc/soc.hpp"
#include "telemetry/host_profiler.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/run_report.hpp"
#include "workload/engine.hpp"

using namespace audo;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: audo-faultcamp [--scenarios N] [--seed S] [--jobs N]\n"
               "       [--cycles N] [--bg N] [--demo] [--no-ecc-sram]\n"
               "       [--no-fast-forward] [--report FILE]\n");
}

}  // namespace

int main(int argc, char** argv) {
  unsigned scenarios = 16;
  u64 seed = 1;
  unsigned jobs = 0;
  u64 cycles = 400'000;
  u32 bg_iterations = 300;
  bool demo = false;
  bool ecc_sram = true;
  bool fast_forward = true;
  const char* report_path = nullptr;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--scenarios") == 0) {
      scenarios = static_cast<unsigned>(std::strtoul(next_value(), nullptr, 0));
    } else if (std::strcmp(arg, "--seed") == 0) {
      seed = std::strtoull(next_value(), nullptr, 0);
    } else if (std::strcmp(arg, "--jobs") == 0) {
      jobs = static_cast<unsigned>(std::strtoul(next_value(), nullptr, 0));
    } else if (std::strcmp(arg, "--cycles") == 0) {
      cycles = std::strtoull(next_value(), nullptr, 0);
    } else if (std::strcmp(arg, "--bg") == 0) {
      bg_iterations = static_cast<u32>(std::strtoul(next_value(), nullptr, 0));
    } else if (std::strcmp(arg, "--demo") == 0) {
      demo = true;
    } else if (std::strcmp(arg, "--no-ecc-sram") == 0) {
      ecc_sram = false;
    } else if (std::strcmp(arg, "--no-fast-forward") == 0) {
      fast_forward = false;
    } else if (std::strcmp(arg, "--report") == 0) {
      report_path = next_value();
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg);
      usage();
      return 2;
    }
  }

  workload::EngineOptions opt;
  opt.halt_after_bg = bg_iterations;
  auto engine = workload::build_engine_workload(opt);
  if (!engine.is_ok()) {
    std::fprintf(stderr, "engine workload: %s\n",
                 engine.status().to_string().c_str());
    return 1;
  }

  soc::SocConfig chip;
  chip.safety.ecc_sram = ecc_sram;
  chip.fast_forward = fast_forward;

  optimize::WorkloadCase wc;
  wc.name = "engine";
  wc.program = engine.value().program;
  wc.tc_entry = engine.value().tc_entry;
  wc.pcp_entry = engine.value().pcp_entry;
  wc.configure = [options = engine.value().options](soc::Soc& soc) {
    workload::configure_engine(soc, options);
  };
  wc.max_cycles = cycles;

  optimize::FaultCampaign campaign(chip, std::move(wc));
  campaign.set_jobs(jobs);

  std::vector<optimize::FaultScenario> plan;
  if (demo) {
    optimize::FaultCampaign::DemoTargets targets;
    const Addr bg = engine.value().program.symbol_addr("_bg_loop").value();
    targets.hot_flash_offset = mem::pflash_offset(bg);
    targets.dead_flash_offset = chip.pflash.size - 0x100;
    targets.live_dspr_offset = chip.dspr_bytes - 0x40;
    soc::Soc probe(chip);
    targets.storm_src = probe.srcs().adc_done;
    auto demos = campaign.make_demo_scenarios(targets);
    plan.insert(plan.end(), demos.begin(), demos.end());
  }
  if (scenarios > 0) {
    auto random = campaign.make_scenarios(seed, scenarios);
    plan.insert(plan.end(), random.begin(), random.end());
  }
  if (plan.empty()) {
    std::fprintf(stderr, "nothing to run (use --scenarios or --demo)\n");
    return 2;
  }

  telemetry::HostProfiler host;
  host.start(0);
  const optimize::CampaignSummary summary = campaign.run(plan);
  u64 total_cycles = summary.golden.cycles;
  for (const optimize::ScenarioResult& r : summary.runs) {
    total_cycles += r.cycles;
  }
  host.stop(total_cycles);

  std::printf("%s", summary.format().c_str());
  std::printf("(%zu runs, %u jobs, %.2fs, classification 0x%llx)\n",
              summary.runs.size() + 1,
              jobs == 0 ? host::SimPool::hardware_jobs() : jobs,
              host.wall_seconds(),
              static_cast<unsigned long long>(summary.classification_hash()));

  if (report_path != nullptr) {
    telemetry::RunReport report;
    report.bench = "audo_faultcamp";
    report.config_name = chip.name;
    report.config_fingerprint = chip.fingerprint();
    report.seed = seed;
    report.cycles = total_cycles;
    report.jobs = jobs == 0 ? host::SimPool::hardware_jobs() : jobs;
    report.set_host(host);
    // Component metrics come from one instrumented fault-free run (the
    // campaign's workers are transient and keep no registries).
    soc::Soc golden(chip);
    if (workload::install_engine(golden, engine.value()).is_ok()) {
      telemetry::MetricsRegistry registry;
      golden.register_metrics(registry);
      golden.run(cycles);
      report.instructions = golden.tc().retired();
      report.sim_ipc = golden.cycle() > 0
                           ? static_cast<double>(golden.tc().retired()) /
                                 static_cast<double>(golden.cycle())
                           : 0.0;
      report.metrics = registry.collect(golden.cycle());
      report.fast_forward_enabled = golden.config().fast_forward;
      report.ff_skipped_cycles = golden.ff_stats().skipped_cycles;
      report.ff_wakeups = golden.ff_stats().wakeups;
      for (unsigned s = 0; s < soc::kNumWakeSources; ++s) {
        if (golden.ff_stats().wake_counts[s] == 0) continue;
        report.add_wake_source(
            soc::to_string(static_cast<soc::WakeSource>(s)),
            golden.ff_stats().wake_counts[s]);
      }
    }
    summary.fill_report(report);
    report.add_extra("classification_hash",
                     static_cast<double>(summary.classification_hash()));
    if (Status s = report.write(report_path); !s.is_ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", report_path,
                   s.to_string().c_str());
      return 1;
    }
    std::printf("run report: %s\n", report_path);
  }
  return 0;
}
