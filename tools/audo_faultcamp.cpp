// audo-faultcamp: parallel fault-injection campaigns over the engine
// workload. Runs a fault-free golden reference, then N seeded fault
// scenarios through the SimPool, and classifies every run as
// masked / corrected / detected / sdc / hang (/ failed for scenarios the
// host could not complete).
//
// The campaign boots the workload once, snapshots the machine at the
// last quiescent cycle before the earliest fault event, and forks every
// scenario from that warm image (bit-identical to cold boots). Every
// completed scenario is journaled to an append-only manifest, so a
// campaign killed at any point — including kill -9 — can be resumed with
// --resume and reproduces the exact merged report and classification
// hash while skipping the scenarios already done.
//
//   audo-faultcamp [options]
//     --scenarios N             random scenarios to generate (default 16)
//     --seed S                  campaign seed (default 1)
//     --jobs N                  host threads (0 = hardware; default 0)
//     --scenario-budget N       per-run cycle budget (default 400000;
//                               --cycles is an alias)
//     --scenario-timeout-ms MS  per-run wall-clock limit (0 = none);
//                               runs over it are classified "hang"
//     --retries N               host-failure retries per scenario before
//                               quarantining it as "failed" (default 2)
//     --bg N                    engine background iterations to completion
//                               (default 300)
//     --idle-revs N             use the event-driven engine shape (WFI
//                               background park, halt after N crank
//                               revolutions) instead of the busy
//                               background loop. This is the shape where
//                               the warm fork actually engages: the busy
//                               loop never goes quiescent before the
//                               fault window, so it always boots cold.
//     --demo                    run the five hand-aimed outcome-class
//                               scenarios instead of (or on top of) the
//                               random set
//     --no-ecc-sram             disable the RAM ECC model for random
//                               scenarios
//     --no-fast-forward         step every idle cycle instead of skipping
//                               quiescent stretches (bit-identical, slower)
//     --exec-tier T             execution engine: 'superblock' (default)
//                               or 'accurate'. Bit-identical either way;
//                               runs with a live injector fall back to
//                               the accurate stepper regardless
//     --cold-boot               disable the warm fork (every run boots
//                               from reset; bit-identical, slower)
//     --manifest FILE           journal completed scenarios to FILE (JSONL)
//     --resume FILE             resume a campaign from FILE: completed
//                               scenarios are replayed from the journal,
//                               the rest run and are appended to it
//     --snapshot FILE           write the warm boot image to FILE
//     --report FILE             write a structured RunReport JSON
//     --record FILE             record a replay golden (trisim-replay/1):
//                               campaign identity, classification hash and
//                               per-scenario outcome rows, verifiable with
//                               audo-replay under any --jobs/--exec-tier.
//                               Incompatible with --demo and --resume (the
//                               oracle reconstructs seed-derived plans only)
//
// SIGINT/SIGTERM abort cooperatively: scenarios not yet started are
// skipped, the manifest stays intact (completed work is never lost), a
// partial report is still written, and the exit code is 130.
#include <csignal>
#include <cstdio>
#include <cstring>

#include <atomic>

#include "host/campaign_manifest.hpp"
#include "host/sim_pool.hpp"
#include "mem/memory_map.hpp"
#include "optimize/fault_campaign.hpp"
#include "replay/replay.hpp"
#include "soc/snapshot.hpp"
#include "soc/soc.hpp"
#include "telemetry/host_profiler.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/run_report.hpp"
#include "workload/engine.hpp"

using namespace audo;

namespace {

std::atomic<bool> g_abort{false};

void on_signal(int) { g_abort.store(true); }

void usage() {
  std::fprintf(
      stderr,
      "usage: audo-faultcamp [--scenarios N] [--seed S] [--jobs N]\n"
      "       [--scenario-budget N] [--scenario-timeout-ms MS] [--retries N]\n"
      "       [--bg N] [--idle-revs N] [--demo] [--no-ecc-sram]\n"
      "       [--no-fast-forward] [--exec-tier accurate|superblock]\n"
      "       [--cold-boot] [--manifest FILE] [--resume FILE]\n"
      "       [--snapshot FILE] [--report FILE] [--record FILE]\n");
}

}  // namespace

int main(int argc, char** argv) {
  unsigned scenarios = 16;
  u64 seed = 1;
  unsigned jobs = 0;
  u64 budget = 400'000;
  u64 timeout_ms = 0;
  unsigned retries = 2;
  u32 bg_iterations = 300;
  u32 idle_revs = 0;
  bool demo = false;
  bool ecc_sram = true;
  bool fast_forward = true;
  soc::SocConfig::ExecTier exec_tier = soc::SocConfig{}.exec_tier;
  bool cold_boot = false;
  const char* manifest_path = nullptr;
  const char* resume_path = nullptr;
  const char* snapshot_path = nullptr;
  const char* report_path = nullptr;
  const char* record_path = nullptr;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--scenarios") == 0) {
      scenarios = static_cast<unsigned>(std::strtoul(next_value(), nullptr, 0));
    } else if (std::strcmp(arg, "--seed") == 0) {
      seed = std::strtoull(next_value(), nullptr, 0);
    } else if (std::strcmp(arg, "--jobs") == 0) {
      jobs = static_cast<unsigned>(std::strtoul(next_value(), nullptr, 0));
    } else if (std::strcmp(arg, "--scenario-budget") == 0 ||
               std::strcmp(arg, "--cycles") == 0) {
      budget = std::strtoull(next_value(), nullptr, 0);
    } else if (std::strcmp(arg, "--scenario-timeout-ms") == 0) {
      timeout_ms = std::strtoull(next_value(), nullptr, 0);
    } else if (std::strcmp(arg, "--retries") == 0) {
      retries = static_cast<unsigned>(std::strtoul(next_value(), nullptr, 0));
    } else if (std::strcmp(arg, "--bg") == 0) {
      bg_iterations = static_cast<u32>(std::strtoul(next_value(), nullptr, 0));
    } else if (std::strcmp(arg, "--idle-revs") == 0) {
      idle_revs = static_cast<u32>(std::strtoul(next_value(), nullptr, 0));
    } else if (std::strcmp(arg, "--demo") == 0) {
      demo = true;
    } else if (std::strcmp(arg, "--no-ecc-sram") == 0) {
      ecc_sram = false;
    } else if (std::strcmp(arg, "--no-fast-forward") == 0) {
      fast_forward = false;
    } else if (std::strcmp(arg, "--exec-tier") == 0) {
      const char* tier = next_value();
      if (std::strcmp(tier, "accurate") == 0) {
        exec_tier = soc::SocConfig::ExecTier::kAccurate;
      } else if (std::strcmp(tier, "superblock") == 0) {
        exec_tier = soc::SocConfig::ExecTier::kSuperblock;
      } else {
        std::fprintf(stderr, "--exec-tier wants 'accurate' or 'superblock'\n");
        usage();
        return 2;
      }
    } else if (std::strcmp(arg, "--cold-boot") == 0) {
      cold_boot = true;
    } else if (std::strcmp(arg, "--manifest") == 0) {
      manifest_path = next_value();
    } else if (std::strcmp(arg, "--resume") == 0) {
      resume_path = next_value();
    } else if (std::strcmp(arg, "--snapshot") == 0) {
      snapshot_path = next_value();
    } else if (std::strcmp(arg, "--report") == 0) {
      report_path = next_value();
    } else if (std::strcmp(arg, "--record") == 0) {
      record_path = next_value();
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg);
      usage();
      return 2;
    }
  }
  if (manifest_path != nullptr && resume_path != nullptr) {
    std::fprintf(stderr, "--manifest and --resume are mutually exclusive "
                         "(--resume appends to the resumed manifest)\n");
    return 2;
  }
  if (record_path != nullptr && (demo || resume_path != nullptr)) {
    std::fprintf(stderr,
                 "--record needs a pure seed-derived plan; it is incompatible "
                 "with --demo and --resume\n");
    return 2;
  }
  if (record_path != nullptr && scenarios == 0) {
    std::fprintf(stderr, "--record: nothing to record with --scenarios 0\n");
    return 2;
  }

  workload::EngineOptions opt;
  if (idle_revs > 0) {
    opt.idle_background = true;
    opt.halt_after_revs = idle_revs;
  } else {
    opt.halt_after_bg = bg_iterations;
  }
  auto engine = workload::build_engine_workload(opt);
  if (!engine.is_ok()) {
    std::fprintf(stderr, "engine workload: %s\n",
                 engine.status().to_string().c_str());
    return 1;
  }

  soc::SocConfig chip;
  chip.safety.ecc_sram = ecc_sram;
  chip.fast_forward = fast_forward;
  chip.exec_tier = exec_tier;

  optimize::WorkloadCase wc;
  wc.name = "engine";
  wc.program = engine.value().program;
  wc.tc_entry = engine.value().tc_entry;
  wc.pcp_entry = engine.value().pcp_entry;
  wc.configure = [options = engine.value().options](soc::Soc& soc) {
    workload::configure_engine(soc, options);
  };
  wc.max_cycles = budget;

  optimize::FaultCampaign campaign(chip, std::move(wc));
  campaign.set_jobs(jobs);
  campaign.set_timeout_ms(timeout_ms);
  campaign.set_retries(retries);
  campaign.set_abort_flag(&g_abort);

  std::vector<optimize::FaultScenario> plan;
  if (demo) {
    optimize::FaultCampaign::DemoTargets targets;
    const Addr bg = engine.value().program.symbol_addr("_bg_loop").value();
    targets.hot_flash_offset = mem::pflash_offset(bg);
    targets.dead_flash_offset = chip.pflash.size - 0x100;
    targets.live_dspr_offset = chip.dspr_bytes - 0x40;
    soc::Soc probe(chip);
    targets.storm_src = probe.srcs().adc_done;
    auto demos = campaign.make_demo_scenarios(targets);
    plan.insert(plan.end(), demos.begin(), demos.end());
  }
  if (scenarios > 0) {
    auto random = campaign.make_scenarios(seed, scenarios);
    plan.insert(plan.end(), random.begin(), random.end());
  }
  if (plan.empty()) {
    std::fprintf(stderr, "nothing to run (use --scenarios or --demo)\n");
    return 2;
  }

  u64 boot_hash = 0;
  if (!cold_boot) {
    boot_hash = campaign.prepare_warm_fork(plan);
    if (boot_hash != 0) {
      std::printf("warm fork: boot image at cycle %llu (0x%llx)\n",
                  static_cast<unsigned long long>(campaign.warm_fork_cycle()),
                  static_cast<unsigned long long>(boot_hash));
    }
  }
  if (snapshot_path != nullptr) {
    if (!campaign.has_warm_fork()) {
      std::fprintf(stderr, "--snapshot: no warm boot image to write\n");
      return 1;
    }
    if (Status s = campaign.warm_fork_image().to_file(snapshot_path);
        !s.is_ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", snapshot_path,
                   s.to_string().c_str());
      return 1;
    }
    std::printf("boot image: %s\n", snapshot_path);
  }

  // Manifest journaling / resume. The header pins the campaign identity;
  // resuming under different parameters is refused.
  host::CampaignManifest manifest;
  host::CampaignHeader header;
  header.workload = campaign.workload().name;
  header.campaign_seed = seed;
  header.config_fingerprint = chip.fingerprint();
  header.snapshot_hash = boot_hash;
  header.scenario_count = plan.size();
  host::ManifestContents resumed;
  if (resume_path != nullptr) {
    auto loaded = host::CampaignManifest::load(resume_path);
    if (!loaded.is_ok()) {
      std::fprintf(stderr, "--resume: %s\n",
                   loaded.status().to_string().c_str());
      return 1;
    }
    resumed = std::move(loaded).value();
    if (resumed.header.workload != header.workload ||
        resumed.header.campaign_seed != header.campaign_seed ||
        resumed.header.config_fingerprint != header.config_fingerprint ||
        resumed.header.scenario_count != header.scenario_count) {
      std::fprintf(stderr,
                   "--resume: manifest belongs to a different campaign "
                   "(workload/seed/config/scenario-count mismatch)\n");
      return 1;
    }
    if (Status s = manifest.open_append(resume_path); !s.is_ok()) {
      std::fprintf(stderr, "%s\n", s.to_string().c_str());
      return 1;
    }
    campaign.set_resume_records(&resumed.records);
    campaign.set_manifest(&manifest);
    std::printf("resume: %zu of %zu scenarios journaled in %s\n",
                resumed.records.size(), plan.size(), resume_path);
  } else if (manifest_path != nullptr) {
    if (Status s = manifest.create(manifest_path, header); !s.is_ok()) {
      std::fprintf(stderr, "%s\n", s.to_string().c_str());
      return 1;
    }
    campaign.set_manifest(&manifest);
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  telemetry::HostProfiler host;
  host.start(0);
  const optimize::CampaignSummary summary = campaign.run(plan);
  u64 total_cycles = summary.golden.cycles;
  for (const optimize::ScenarioResult& r : summary.runs) {
    total_cycles += r.cycles;
  }
  host.stop(total_cycles);
  manifest.close();

  const bool aborted = g_abort.load();
  if (aborted) {
    std::printf("aborted: %zu of %zu scenarios completed\n",
                summary.runs.size(), plan.size());
  }

  std::printf("%s", summary.format().c_str());
  std::printf("(%zu runs, %u jobs, %.2fs, classification 0x%llx)\n",
              summary.runs.size() + 1,
              jobs == 0 ? host::SimPool::hardware_jobs() : jobs,
              host.wall_seconds(),
              static_cast<unsigned long long>(summary.classification_hash()));

  if (report_path != nullptr) {
    telemetry::RunReport report;
    report.bench = "audo_faultcamp";
    report.config_name = chip.name;
    report.config_fingerprint = chip.fingerprint();
    report.seed = seed;
    report.cycles = total_cycles;
    report.jobs = jobs == 0 ? host::SimPool::hardware_jobs() : jobs;
    report.set_host(host);
    // Component metrics come from one instrumented fault-free run (the
    // campaign's workers are transient and keep no registries). Skipped
    // on abort: flushing the classification data matters more than
    // burning seconds on a full metrics run after Ctrl-C.
    soc::Soc golden(chip);
    if (!aborted && workload::install_engine(golden, engine.value()).is_ok()) {
      telemetry::MetricsRegistry registry;
      golden.register_metrics(registry);
      golden.run(budget);
      report.instructions = golden.tc().retired();
      report.sim_ipc = golden.cycle() > 0
                           ? static_cast<double>(golden.tc().retired()) /
                                 static_cast<double>(golden.cycle())
                           : 0.0;
      report.metrics = registry.collect(golden.cycle());
      report.fast_forward_enabled = golden.config().fast_forward;
      report.ff_skipped_cycles = golden.ff_stats().skipped_cycles;
      report.ff_wakeups = golden.ff_stats().wakeups;
      golden.fill_exec_tier_report(report);
      for (unsigned s = 0; s < soc::kNumWakeSources; ++s) {
        if (golden.ff_stats().wake_counts[s] == 0) continue;
        report.add_wake_source(
            soc::to_string(static_cast<soc::WakeSource>(s)),
            golden.ff_stats().wake_counts[s]);
      }
    }
    summary.fill_report(report);
    report.add_extra("classification_hash",
                     static_cast<double>(summary.classification_hash()));
    report.add_extra("warm_fork", campaign.has_warm_fork() ? 1.0 : 0.0);
    report.add_extra("aborted", aborted ? 1.0 : 0.0);
    report.add_extra("scenarios_completed",
                     static_cast<double>(summary.runs.size()));
    report.add_extra("scenarios_planned", static_cast<double>(plan.size()));
    if (Status s = report.write(report_path); !s.is_ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", report_path,
                   s.to_string().c_str());
      return 1;
    }
    std::printf("run report: %s\n", report_path);
  }
  if (record_path != nullptr && !aborted) {
    replay::ReplaySpec spec;
    spec.name = "faultcamp-engine";
    spec.scenario.kind = "engine";
    spec.scenario.run_cycles = budget;
    spec.scenario.engine = opt;
    spec.config = chip;
    spec.config_fingerprint = chip.fingerprint();
    spec.cycles = summary.golden.cycles;
    spec.campaign.enabled = true;
    spec.campaign.seed = seed;
    spec.campaign.scenarios = scenarios;
    spec.campaign.jobs = jobs == 0 ? host::SimPool::hardware_jobs() : jobs;
    spec.campaign.budget_cycles = budget;
    spec.campaign.classification_hash = summary.classification_hash();
    for (const optimize::ScenarioResult& r : summary.runs) {
      replay::CampaignSpec::Run row;
      row.name = r.name;
      row.outcome = optimize::to_string(r.outcome);
      row.cycles = r.cycles;
      row.signature = r.signature;
      spec.campaign.runs.push_back(std::move(row));
    }
    if (Status s = spec.to_file(record_path); !s.is_ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", record_path,
                   s.to_string().c_str());
      return 1;
    }
    std::printf("replay golden: %s (%zu scenario rows, classification "
                "0x%llx)\n",
                record_path, spec.campaign.runs.size(),
                static_cast<unsigned long long>(
                    spec.campaign.classification_hash));
  } else if (record_path != nullptr) {
    std::fprintf(stderr, "--record: campaign aborted, golden not written\n");
  }
  return aborted ? 130 : 0;
}
