; Demo program for the audo-profile CLI:
;   ./build/tools/audo-profile examples/demo.s --functions --listing 20
;
; A small "sensor fusion" loop: LCG-generated samples filtered in the
; DSPR, calibration gain looked up from a flash table.
    .equ ITERATIONS, 400

    .text 0x80000000
main:
    movha a15, 0xC000          ; DSPR base
    movd  d0, 0x1357           ; LCG state
    movh  d8, 25
    ori   d8, d8, 26125        ; 1664525
    movh  d9, 15470
    ori   d9, d9, 62303        ; 1013904223
    movd  d1, ITERATIONS
    mov.ad a2, d1
_mainloop:
    call  sample
    call  filter
    call  calibrate
    loop  a2, _mainloop
    halt

sample:                        ; d2 = next pseudo-sensor value
    mul   d0, d0, d8
    add   d0, d0, d9
    shri  d2, d0, 20
    ret

filter:                        ; filt += (sample - filt) / 8
    ld.w  d3, [a15+lo(filt)]
    sub   d4, d2, d3
    sari  d4, d4, 3
    add   d3, d3, d4
    st.w  d3, [a15+lo(filt)]
    ret

calibrate:                     ; out = filt * gain[filt % 64]
    andi  d4, d3, 63
    shli  d4, d4, 2
    movh  d5, hi(gains)
    ori   d5, d5, lo(gains)
    add   d5, d5, d4
    mov.ad a3, d5
    ld.w  d6, [a3+0]
    mul   d7, d3, d6
    st.w  d7, [a15+lo(output)]
    ret

    .data 0xC0000000
filt:
    .word 2048
output:
    .word 0

    .data 0x80020000
gains:
    .word 10, 11, 12, 13, 14, 15, 16, 17
    .word 18, 19, 20, 21, 22, 23, 24, 25
    .word 26, 27, 28, 29, 30, 31, 32, 33
    .word 34, 35, 36, 37, 38, 39, 40, 41
    .word 42, 43, 44, 45, 46, 47, 48, 49
    .word 50, 51, 52, 53, 54, 55, 56, 57
    .word 58, 59, 60, 61, 62, 63, 64, 65
    .word 66, 67, 68, 69, 70, 71, 72, 73
