// Quickstart: assemble a small program, run it on an Emulation Device
// with the standard §5 profiling specification, and print the measured
// parameter series.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "isa/assembler.hpp"
#include "profiling/session.hpp"

using namespace audo;

int main() {
  // A tiny "application": a cached-flash compute loop followed by a
  // flash-data-heavy lookup loop.
  auto program = isa::assemble(R"(
    .text 0x80000000
main:
    movd  d0, 2000
    mov.ad a2, d0
_compute:
    addi  d1, d1, 3
    mul   d2, d1, d1
    loop  a2, _compute

    movh  d3, hi(table)
    ori   d3, d3, lo(table)
    mov.ad a3, d3
    movd  d0, 500
    mov.ad a4, d0
_lookups:
    ld.w  d4, [a3+0]
    xor   d5, d5, d4
    lea   a3, [a3+36]     ; stride that defeats the read buffer
    loop  a4, _lookups
    halt

    .data 0x80020000
table:
    .space 32768
)");
  if (!program.is_ok()) {
    std::printf("assembly failed: %s\n", program.status().to_string().c_str());
    return 1;
  }

  // An Emulation Device around a TC1797-like SoC, measuring the standard
  // parameter set with a 500-instruction/500-cycle resolution.
  soc::SocConfig chip;  // defaults model the TC1797
  profiling::SessionOptions options;
  options.resolution = 500;

  profiling::ProfilingSession session(chip, options);
  if (Status s = session.load(program.value()); !s.is_ok()) {
    std::printf("load failed: %s\n", s.to_string().c_str());
    return 1;
  }
  session.reset(program.value().entry());
  const profiling::SessionResult result = session.run(1'000'000);

  std::printf("ran %llu cycles, %llu instructions, IPC %.3f\n",
              static_cast<unsigned long long>(result.cycles),
              static_cast<unsigned long long>(result.tc_retired), result.ipc);
  std::printf("trace: %llu messages, %llu bytes (%.1f bytes/kcycle)\n\n",
              static_cast<unsigned long long>(result.trace_messages),
              static_cast<unsigned long long>(result.trace_bytes),
              result.bytes_per_kcycle);
  std::printf("%s\n", profiling::format_series_summary(result.series).c_str());

  if (const auto* ipc = result.find_series("ipc/tc.retired")) {
    std::printf("IPC over time:   [%s]\n",
                profiling::sparkline(*ipc).c_str());
  }
  if (const auto* flash = result.find_series("access/tc.flash.data_access")) {
    std::printf("flash data rate: [%s]\n",
                profiling::sparkline(*flash).c_str());
  }
  return 0;
}
