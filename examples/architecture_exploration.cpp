// Architecture exploration: quantify next-generation SoC options across
// a workload suite and rank them by performance-gain / area-cost — the
// paper's §6 decision procedure — then apply an F-model generation step.
//
// Build & run:   ./build/examples/architecture_exploration
#include <cstdio>

#include "optimize/evaluator.hpp"
#include "workload/engine.hpp"
#include "workload/kernels.hpp"
#include "workload/transmission.hpp"

using namespace audo;

int main() {
  soc::SocConfig baseline;  // TC1797-like
  optimize::ArchitectureEvaluator evaluator(baseline);

  // Customer-like workload suite: kernels plus a bounded engine run.
  for (const auto& spec : workload::standard_suite()) {
    auto program = spec.build();
    if (!program.is_ok()) continue;
    optimize::WorkloadCase wc;
    wc.name = spec.name;
    wc.program = std::move(program).value();
    wc.tc_entry = wc.program.entry();
    evaluator.add_case(std::move(wc));
  }
  {
    workload::EngineOptions opt;
    opt.crank_time_scale = 100;
    opt.halt_after_revs = 4;
    auto engine = workload::build_engine_workload(opt);
    if (engine.is_ok()) {
      optimize::WorkloadCase wc;
      wc.name = "engine_4revs";
      wc.program = engine.value().program;
      wc.tc_entry = engine.value().tc_entry;
      wc.pcp_entry = engine.value().pcp_entry;
      wc.configure = [opt](soc::Soc& soc) {
        workload::configure_engine(soc, opt);
      };
      wc.weight = 3.0;  // the application matters more than kernels
      evaluator.add_case(std::move(wc));
    }
  }

  {
    workload::TransmissionOptions opt;
    opt.time_scale = 100;
    opt.halt_after_tasks = 50;
    auto tcu = workload::build_transmission_workload(opt);
    if (tcu.is_ok()) {
      optimize::WorkloadCase wc;
      wc.name = "transmission_50t";
      wc.program = tcu.value().program;
      wc.tc_entry = tcu.value().tc_entry;
      wc.configure = [opt](soc::Soc& soc) {
        workload::configure_transmission(soc, opt);
      };
      wc.weight = 2.0;
      evaluator.add_case(std::move(wc));
    }
  }

  const auto catalogue = optimize::standard_catalogue();
  std::printf("evaluating %zu options over the workload suite...\n\n",
              catalogue.size());
  const auto results = evaluator.evaluate(catalogue);
  std::printf("%s\n",
              optimize::ArchitectureEvaluator::format_ranking(results).c_str());

  // F-model step: pick the best options under a 150 au budget.
  std::vector<std::string> applied;
  const soc::SocConfig next =
      evaluator.next_generation(catalogue, 150.0, &applied);
  std::printf("next generation (budget 150 au) applies:");
  for (const std::string& name : applied) std::printf(" %s", name.c_str());
  std::printf("\n");
  const double base_area = evaluator.cost_model().soc_area(baseline);
  const double next_area = evaluator.cost_model().soc_area(next);
  std::printf("area: %.1f au -> %.1f au (+%.1f)\n", base_area, next_area,
              next_area - base_area);

  u64 base_cycles = 0, next_cycles = 0;
  for (const auto& run : evaluator.run_config(baseline)) base_cycles += run.cycles;
  for (const auto& run : evaluator.run_config(next)) next_cycles += run.cycles;
  std::printf("suite cycles: %llu -> %llu (%.2fx)\n",
              static_cast<unsigned long long>(base_cycles),
              static_cast<unsigned long long>(next_cycles),
              static_cast<double>(base_cycles) /
                  static_cast<double>(next_cycles));
  return 0;
}
