// MCDS trigger demo: "trigger on events not happening in a defined time
// window" (§3). A counter group watches crank-tooth interrupt entries per
// time window; when a window passes with no tooth, trigger actions freeze
// the ring-buffer trace and pulse trigger-out — post-trigger capture
// around the failure, exactly how the real ED is used.
//
// Build & run:   ./build/examples/trigger_watchdog
#include <cstdio>

#include "ed/emulation_device.hpp"
#include "workload/engine.hpp"

using namespace audo;

int main() {
  workload::EngineOptions engine;
  engine.rpm = 4000;
  engine.crank_time_scale = 80;
  auto workload = workload::build_engine_workload(engine);
  if (!workload.is_ok()) {
    std::printf("workload: %s\n", workload.status().to_string().c_str());
    return 1;
  }

  // MCDS: watch tooth irq entries (priority 40, selected by a comparator
  // qualifier) in 5000-cycle windows.
  mcds::McdsConfig mcds_config;
  mcds_config.program_trace = true;
  mcds_config.irq_trace = true;
  mcds_config.sync_interval_cycles = 1024;
  mcds_config.comparators = {mcds::Comparator{
      mcds::CoreSel::kTc, mcds::CompareField::kIrqPrio,
      engine.prio_tooth, engine.prio_tooth, -1}};
  mcds::CounterGroupConfig watch;
  watch.name = "tooth_watch";
  watch.basis = mcds::EventId::kCycles;
  watch.resolution = 5000;
  mcds::RateCounterConfig tooth_counter;
  tooth_counter.event = mcds::EventId::kTcIrqEntry;
  tooth_counter.threshold = mcds::Threshold{mcds::Threshold::Dir::kBelow, 1};
  tooth_counter.qualifier = 0;  // only priority-40 entries count
  watch.counters = {tooth_counter};
  mcds_config.counter_groups = {watch};
  mcds_config.actions = {
      mcds::ActionBinding{mcds::Equation::counter_flag(0),
                          mcds::TriggerAction::kStopTrace, 0},
      mcds::ActionBinding{mcds::Equation::counter_flag(0),
                          mcds::TriggerAction::kTriggerOut, 0},
  };

  ed::EdConfig ed_config;
  ed_config.emem.mode = emem::TraceMode::kRing;  // post-trigger capture
  ed_config.emem.size_bytes = 64 * 1024;
  ed_config.emem.overlay_bytes = 32 * 1024;

  ed::EmulationDevice ed(soc::SocConfig{}, mcds_config, ed_config);
  if (Status s = ed.load(workload.value().program); !s.is_ok()) {
    std::printf("load: %s\n", s.to_string().c_str());
    return 1;
  }
  workload::configure_engine(ed.soc(), workload.value().options);
  ed.reset(workload.value().tc_entry, workload.value().pcp_entry);

  std::printf("engine running at %u rpm; tooth watchdog window = 5000 cycles\n",
              engine.rpm);
  ed.run(300'000);
  std::printf("after 300k cycles: trigger-out pulses = %llu (engine healthy)\n",
              static_cast<unsigned long long>(ed.mcds().trigger_out_pulses()));

  // Fault injection: the crank signal dies (broken sensor).
  std::printf("\n-- injecting crank sensor failure --\n");
  ed.soc().crank().set_rpm(1);  // effectively no teeth
  ed.run(300'000);

  if (ed.mcds().trigger_out_pulses() == 0) {
    std::printf("ERROR: trigger never fired\n");
    return 1;
  }
  std::printf("trigger-out fired at cycle %llu; trace frozen = %s\n",
              static_cast<unsigned long long>(ed.mcds().last_trigger_out()),
              ed.mcds().trace_frozen() ? "yes" : "no");

  auto decoded = ed.download_trace();
  if (!decoded.is_ok()) {
    std::printf("decode: %s\n", decoded.status().to_string().c_str());
    return 1;
  }
  const auto& messages = decoded.value();
  std::printf("ring buffer holds %zu messages", messages.size());
  if (!messages.empty()) {
    std::printf(" covering cycles %llu..%llu (window around the failure)",
                static_cast<unsigned long long>(messages.front().cycle),
                static_cast<unsigned long long>(messages.back().cycle));
  }
  std::printf("\nlast interrupt entries before the freeze:\n");
  int shown = 0;
  for (auto it = messages.rbegin(); it != messages.rend() && shown < 5; ++it) {
    if (it->kind == mcds::MsgKind::kIrq && it->irq_entry) {
      std::printf("  cycle %llu: irq priority %u\n",
                  static_cast<unsigned long long>(it->cycle), it->id);
      ++shown;
    }
  }
  return 0;
}
