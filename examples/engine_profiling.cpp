// Engine-control profiling session: the full §5 workflow on the
// synthetic powertrain application — parallel parameter series, a
// function-level profile and a scratchpad-candidate list.
//
// Build & run:   ./build/examples/engine_profiling
#include <cstdio>

#include "profiling/function_profile.hpp"
#include "profiling/session.hpp"
#include "workload/engine.hpp"

using namespace audo;

int main() {
  workload::EngineOptions engine;
  engine.rpm = 4500;
  engine.crank_time_scale = 80;
  engine.wdt_period = 100'000;
  auto workload = workload::build_engine_workload(engine);
  if (!workload.is_ok()) {
    std::printf("workload: %s\n", workload.status().to_string().c_str());
    return 1;
  }

  profiling::SessionOptions options;
  options.resolution = 1000;
  options.program_trace = true;  // for the function-level profile
  options.data_trace = true;     // for the data-object profile
  options.irq_trace = true;
  // Qualify the data trace to the lookup-table region — full data trace
  // of every access would overrun the EMEM (the §5 bandwidth problem);
  // tracing just the object under study is the real-world practice.
  const Addr tables = workload.value().program.symbol_addr("ign_table")
                          .value_or(0x80040000);
  options.comparators = {mcds::Comparator{
      mcds::CoreSel::kTc, mcds::CompareField::kDataAddr, tables,
      tables + 2 * engine.table_dim * engine.table_dim * 4 - 1, -1}};
  options.data_qualifier = 0;

  profiling::ProfilingSession session(soc::SocConfig{}, options);
  if (Status s = session.load(workload.value().program); !s.is_ok()) {
    std::printf("load: %s\n", s.to_string().c_str());
    return 1;
  }
  workload::configure_engine(session.device().soc(), engine);
  session.reset(workload.value().tc_entry, workload.value().pcp_entry);

  std::printf("profiling the engine application for 2M cycles at %u rpm...\n\n",
              engine.rpm);
  const profiling::SessionResult result = session.run(2'000'000);

  std::printf("IPC %.3f | %llu trace bytes (%.1f bytes/kcycle) | %llu dropped\n\n",
              result.ipc,
              static_cast<unsigned long long>(result.trace_bytes),
              result.bytes_per_kcycle,
              static_cast<unsigned long long>(result.dropped_messages));

  std::printf("== parallel parameter series (the Section 5 set) ==\n%s\n",
              profiling::format_series_summary(result.series).c_str());
  if (const auto* ipc = result.find_series("ipc/tc.retired")) {
    std::printf("IPC:        [%s]\n", profiling::sparkline(*ipc).c_str());
  }
  if (const auto* irqs = result.find_series("system/tc.irq.entry")) {
    std::printf("IRQ rate:   [%s]\n", profiling::sparkline(*irqs).c_str());
  }
  if (const auto* dcm = result.find_series("cache/tc.dcache.miss")) {
    std::printf("D$ misses:  [%s]\n\n", profiling::sparkline(*dcm).c_str());
  }

  profiling::SystemProfiler profiler{isa::SymbolMap(workload.value().program)};
  profiler.consume(result.messages);
  std::printf("== function-level profile ==\n%s\n",
              profiler.format_function_profile(12).c_str());
  std::printf("== hot data objects (scratchpad-mapping candidates) ==\n%s\n",
              profiler.format_data_profile(8).c_str());

  auto& soc = session.device().soc();
  std::printf("interrupt service counts: tooth %llu, sync %llu, adc %llu, "
              "can_rx %llu, stm %llu, wdt timeouts %llu\n",
              static_cast<unsigned long long>(
                  soc.irq_router().node(soc.srcs().crank_tooth).serviced),
              static_cast<unsigned long long>(
                  soc.irq_router().node(soc.srcs().crank_sync).serviced),
              static_cast<unsigned long long>(
                  soc.irq_router().node(soc.srcs().adc_done).serviced),
              static_cast<unsigned long long>(
                  soc.irq_router().node(soc.srcs().can_rx).serviced),
              static_cast<unsigned long long>(
                  soc.irq_router().node(soc.srcs().stm0).serviced),
              static_cast<unsigned long long>(0));
  return 0;
}
