// HW/SW partitioning study: §1's "software partitioning between TriCore
// and PCP cores" and the DMA alternative, quantified with the profiling
// methodology. Compares three mappings of the same application under an
// increasing interrupt load and reports where the TC runs out of slack.
//
// Build & run:   ./build/examples/hw_sw_partitioning
#include <cstdio>

#include "profiling/session.hpp"
#include "workload/engine.hpp"

using namespace audo;

namespace {

struct Mapping {
  const char* name;
  bool pcp_offload;
  bool dma_adc;
};

struct Row {
  u64 cycles = 0;       // to finish the fixed background work
  double tc_ipc = 0.0;
  u64 irqs_tc = 0;
  u64 pcp_retired = 0;
  u64 dma_units = 0;
  u32 tooth_lat_max = 0;   // worst-case tooth-ISR entry latency (cycles)
  double tooth_lat_avg = 0.0;
};

Row run_mapping(const Mapping& mapping, u32 adc_period, u32 can_period) {
  workload::EngineOptions opt;
  opt.rpm = 4500;
  opt.crank_time_scale = 100;
  opt.adc_period = adc_period;
  opt.can_rx_period = can_period;
  opt.pcp_offload = mapping.pcp_offload;
  opt.use_dma_for_adc = mapping.dma_adc;
  opt.halt_after_bg = 200;  // fixed background work = the figure of merit
  auto w = workload::build_engine_workload(opt);
  if (!w.is_ok()) {
    std::fprintf(stderr, "build: %s\n", w.status().to_string().c_str());
    std::abort();
  }

  soc::Soc soc{soc::SocConfig{}};
  if (Status s = workload::install_engine(soc, w.value()); !s.is_ok()) {
    std::abort();
  }
  soc.run(80'000'000);

  Row row;
  row.cycles = soc.cycle();
  row.tc_ipc = static_cast<double>(soc.tc().retired()) /
               static_cast<double>(soc.cycle());
  const auto& srcs = soc.srcs();
  for (unsigned id : {srcs.stm0, srcs.crank_tooth, srcs.crank_sync,
                      srcs.adc_done, srcs.can_rx}) {
    const auto& node = soc.irq_router().node(id);
    if (node.target == periph::IrqTarget::kTc) row.irqs_tc += node.serviced;
  }
  if (soc.pcp() != nullptr) row.pcp_retired = soc.pcp()->retired();
  row.dma_units = soc.dma().stats(0).units;
  // ISR-entry latency measured by the application itself.
  const auto& prog = w.value().program;
  row.tooth_lat_max = soc.dspr().read(prog.symbol_addr("lat_max").value(), 4);
  const u32 sum = soc.dspr().read(prog.symbol_addr("lat_sum").value(), 4);
  const u32 teeth = soc.dspr().read(prog.symbol_addr("tooth_count").value(), 4);
  row.tooth_lat_avg = teeth == 0 ? 0.0 : static_cast<double>(sum) / teeth;
  return row;
}

}  // namespace

int main() {
  const Mapping mappings[] = {
      {"all-on-TC", false, false},
      {"PCP offload (ADC+CAN)", true, false},
      {"DMA for ADC", false, true},
  };

  std::printf("HW/SW partitioning under increasing peripheral load\n");
  std::printf("(cycles to finish 200 background iterations; lower = more "
              "TC headroom)\n\n");
  struct LoadPoint {
    const char* label;
    u32 adc_period;
    u32 can_period;
  };
  const LoadPoint loads[] = {
      {"light  (adc 5k / can 20k)", 5000, 20000},
      {"medium (adc 2k / can 8k)", 2000, 8000},
      {"heavy  (adc 800 / can 3k)", 800, 3000},
  };

  std::printf("%-28s", "load \\ mapping");
  for (const auto& m : mappings) std::printf("%24s", m.name);
  std::printf("\n");
  for (const auto& load : loads) {
    std::printf("%-28s", load.label);
    u64 baseline = 0;
    for (const auto& m : mappings) {
      const Row row = run_mapping(m, load.adc_period, load.can_period);
      if (baseline == 0) baseline = row.cycles;
      std::printf("%15llu (%4.2fx)",
                  static_cast<unsigned long long>(row.cycles),
                  static_cast<double>(baseline) /
                      static_cast<double>(row.cycles));
    }
    std::printf("\n");
  }

  std::printf("\ndetail at the heavy load point:\n");
  std::printf("%-24s %12s %8s %10s %12s %10s %10s %10s\n", "mapping",
              "cycles", "TC IPC", "TC irqs", "PCP instrs", "DMA units",
              "lat avg", "lat max");
  for (const auto& m : mappings) {
    const Row row = run_mapping(m, 800, 3000);
    std::printf("%-24s %12llu %8.3f %10llu %12llu %10llu %10.1f %10u\n",
                m.name, static_cast<unsigned long long>(row.cycles),
                row.tc_ipc, static_cast<unsigned long long>(row.irqs_tc),
                static_cast<unsigned long long>(row.pcp_retired),
                static_cast<unsigned long long>(row.dma_units),
                row.tooth_lat_avg, row.tooth_lat_max);
  }
  std::printf("(lat = tooth-ISR entry latency in cycles, measured by the "
              "application via the crank TOOTH_TIME timestamp)\n");
  std::printf("\nthe mapping choice is the §1/§4 point: the same silicon "
              "serves different customer partitionings, so architecture "
              "options must not privilege one mapping.\n");
  return 0;
}
